//! Sharded-dataset scatter-gather CBIR across a fleet of machines.
//!
//! The billion-vector dataset is split into N equal shards, one per
//! machine: each node holds `centroid_store_bytes / N` of the short-list
//! store and answers each query batch with its own partial top-K over
//! `candidates_per_query / N` rerank candidates. The aggregator broadcasts
//! the query images to every shard, collects the N partial top-K lists and
//! merges them (see [`crate::topk::merge_top_k`] for the proof that the
//! merged list equals the unsharded answer). Timing rides
//! [`reach::aggregate_scatter_gather`]'s analytic model.
//!
//! With N = 1 the shard workload **is** the paper's setup and the fleet
//! report is the single-machine report byte-for-byte — the degenerate case
//! every existing scenario reduces to.

use crate::pipeline::{CbirMapping, CbirPipeline, IMAGE_BYTES};
use crate::scenarios::{blueprint_with, CbirScenario};
use crate::workload::CbirWorkload;
use reach::fingerprint::ConfigFingerprint;
use reach::fleet::{
    aggregate_scatter_gather, FleetBlueprint, FleetScenario, ScatterGatherSpec, ShardPlacement,
};
use reach::{RunReport, Scenario, ScenarioExecutor};
use reach_sim::{FingerprintBuilder, SimDuration};
use std::fmt;

/// Shard counts swept by the fleet scatter-gather experiment.
pub const FLEET_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Query batches per fleet point.
pub const FLEET_BATCHES: usize = 8;

/// One scatter-gather CBIR point: a homogeneous fleet whose shards each
/// run the paper's pipeline over `1/N`-th of the dataset.
#[derive(Clone, Debug)]
pub struct CbirFleetScenario {
    label: String,
    fleet: FleetBlueprint,
    batches: usize,
}

impl CbirFleetScenario {
    /// A fleet of `shards` paper-shaped nodes (4 near-memory + 4
    /// near-storage accelerators each) with the dataset split evenly and
    /// placed at `placement`, labelled `fleet/<placement>/x<shards>`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn sharded(shards: usize, placement: ShardPlacement, batches: usize) -> Self {
        let fleet = FleetBlueprint::uniform(blueprint_with(4, 4), shards).with_placement(placement);
        CbirFleetScenario {
            label: format!("fleet/{}/x{shards}", placement.name()),
            fleet,
            batches,
        }
    }

    /// A copy with the topology adjusted by `adjust` — the idiom for
    /// varying one fleet knob (link, replication) around a base point.
    #[must_use]
    pub fn map_fleet(mut self, adjust: impl FnOnce(FleetBlueprint) -> FleetBlueprint) -> Self {
        self.fleet = adjust(self.fleet);
        self
    }

    /// The per-shard workload: the paper's setup with the short-list store
    /// and the rerank candidate volume divided by the shard count. One
    /// shard reproduces `CbirWorkload::paper_setup()` exactly.
    #[must_use]
    pub fn shard_workload(&self) -> CbirWorkload {
        let n = self.fleet.shards();
        let mut w = CbirWorkload::paper_setup();
        w.centroid_store_bytes /= n as u64;
        w.candidates_per_query /= n;
        w
    }

    /// The pipeline mapping implied by the shard placement: near-storage
    /// shards run the paper's proper (ReACH) mapping, near-memory shards
    /// keep every stage at the near-memory level.
    #[must_use]
    pub fn mapping(&self) -> CbirMapping {
        match self.fleet.placement() {
            ShardPlacement::NearStorage => CbirMapping::Proper,
            ShardPlacement::NearMemory => CbirMapping::AllNearMemory,
        }
    }

    fn shard_cbir(&self, shard: usize) -> CbirScenario {
        CbirScenario::full(
            format!("{}/shard{shard}", self.label),
            self.fleet.node(shard).clone(),
            CbirPipeline::new(self.shard_workload(), self.mapping()),
            self.batches,
        )
    }

    fn spec(&self) -> ScatterGatherSpec {
        let full = CbirWorkload::paper_setup();
        let shard = self.shard_workload();
        ScatterGatherSpec {
            // Broadcast: the raw query images of one batch, to each shard.
            scatter_bytes: full.batch as u64 * IMAGE_BYTES,
            // Collect: one partial top-K (batch x k x 8 B) from each shard.
            gather_bytes: shard.result_bytes(),
            // K-way merge of N sorted k-lists at one element per
            // nanosecond, per query in the batch.
            merge_cost: SimDuration::from_ns((full.batch * full.k * self.fleet.shards()) as u64),
        }
    }
}

impl FleetScenario for CbirFleetScenario {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn fleet(&self) -> FleetBlueprint {
        self.fleet.clone()
    }

    fn shard_scenario(&self, shard: usize) -> Box<dyn Scenario> {
        Box::new(self.shard_cbir(shard))
    }

    fn aggregate(&self, shard_reports: Vec<RunReport>) -> RunReport {
        aggregate_scatter_gather(&self.fleet, shard_reports, &self.spec())
    }

    /// Composes the fleet topology digest with every shard scenario's own
    /// fingerprint and the batch count — so any knob that changes a shard's
    /// simulation, or the topology around it, changes the fleet digest.
    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        let mut b = FingerprintBuilder::new("reach-cbir-fleet-v1");
        self.fleet.fingerprint().write_into(&mut b);
        for shard in 0..self.fleet.shards() {
            self.shard_cbir(shard)
                .config_fingerprint()?
                .write_into(&mut b);
        }
        b.write_usize(self.batches);
        Some(ConfigFingerprint::from_builder(b))
    }
}

/// One rendered row of the fleet scatter-gather experiment.
#[derive(Clone, Debug)]
pub struct FleetRow {
    /// Where the shards live.
    pub placement: ShardPlacement,
    /// Dataset shard count.
    pub shards: usize,
    /// Fleet makespan in milliseconds.
    pub makespan_ms: f64,
    /// Throughput gain over the same-placement single-machine point.
    pub throughput_gain: f64,
    /// Mean accelerator busy time per shard, in milliseconds.
    pub shard_busy_ms: f64,
    /// Inter-machine link occupancy in milliseconds (0 for one shard).
    pub link_busy_ms: f64,
    /// Aggregator merge time in milliseconds (0 for one shard).
    pub merge_ms: f64,
    /// Total fleet energy in joules.
    pub energy_j: f64,
}

impl fmt::Display for FleetRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} x{:<2} makespan {:>9.3}ms  throughput {:>5.2}x  busy/shard {:>9.3}ms  \
             link {:>7.3}ms  merge {:>6.3}ms  {:>7.2}J",
            self.placement.name(),
            self.shards,
            self.makespan_ms,
            self.throughput_gain,
            self.shard_busy_ms,
            self.link_busy_ms,
            self.merge_ms,
            self.energy_j
        )
    }
}

/// Final value of a fleet counter in a report's telemetry (0 if absent —
/// the 1-shard case carries the unchanged single-machine snapshot).
fn fleet_counter(report: &RunReport, name: &str) -> u64 {
    match report.metrics.get(name) {
        Some(reach::MetricValue::Counter { value }) => *value,
        _ => 0,
    }
}

/// Runs the scatter-gather sweep — [`FLEET_SWEEP`] shard counts at both
/// placements — through `executor` and reduces each fleet to a
/// [`FleetRow`]. Throughput gains are normalized per placement against its
/// own 1-shard point.
#[must_use]
pub fn fleet_scatter_gather_with(executor: &dyn ScenarioExecutor) -> Vec<FleetRow> {
    let mut fleets: Vec<Box<dyn FleetScenario>> = Vec::new();
    for placement in ShardPlacement::ALL {
        for &shards in &FLEET_SWEEP {
            fleets.push(Box::new(CbirFleetScenario::sharded(
                shards,
                placement,
                FLEET_BATCHES,
            )));
        }
    }
    let results = executor.run_fleets(fleets);
    let mut rows = Vec::with_capacity(results.len());
    for (p, placement) in ShardPlacement::ALL.into_iter().enumerate() {
        let group = &results[p * FLEET_SWEEP.len()..(p + 1) * FLEET_SWEEP.len()];
        let base_throughput = group[0].report.throughput_jobs_per_sec();
        for (r, &shards) in group.iter().zip(&FLEET_SWEEP) {
            let total_busy: SimDuration = r.report.stages.iter().map(|s| s.busy).sum();
            rows.push(FleetRow {
                placement,
                shards,
                makespan_ms: r.report.makespan.as_ms_f64(),
                throughput_gain: r.report.throughput_jobs_per_sec() / base_throughput,
                shard_busy_ms: total_busy.as_ms_f64() / shards as f64,
                link_busy_ms: fleet_counter(&r.report, "fleet.link.busy_ps") as f64 * 1e-9,
                merge_ms: fleet_counter(&r.report, "fleet.aggregator.merge_ps") as f64 * 1e-9,
                energy_j: r.report.total_energy_j(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::SequentialExecutor;

    #[test]
    fn one_shard_workload_is_the_paper_setup() {
        let point = CbirFleetScenario::sharded(1, ShardPlacement::NearStorage, 4);
        assert_eq!(point.shard_workload(), CbirWorkload::paper_setup());
        assert_eq!(point.label(), "fleet/near-storage/x1");
    }

    #[test]
    fn shards_split_store_and_candidates_evenly() {
        let point = CbirFleetScenario::sharded(8, ShardPlacement::NearMemory, 4);
        let w = point.shard_workload();
        assert_eq!(w.centroid_store_bytes, 2_200_000_000 / 8);
        assert_eq!(w.candidates_per_query, 4096 / 8);
        assert_eq!(point.mapping(), CbirMapping::AllNearMemory);
    }

    #[test]
    fn shard_scenarios_share_one_fingerprint() {
        // All shards of a homogeneous fleet are configured identically, so
        // the runner simulates one and replays the rest.
        let point = CbirFleetScenario::sharded(4, ShardPlacement::NearStorage, 2);
        let fp0 = point.shard_scenario(0).config_fingerprint();
        assert!(fp0.is_some());
        for shard in 1..4 {
            assert_eq!(point.shard_scenario(shard).config_fingerprint(), fp0);
        }
    }

    /// Flipping any fleet-scenario knob must change the composed
    /// fingerprint (the topology-level knobs are covered by the
    /// `FleetBlueprint` test in `reach::fleet`).
    #[test]
    fn fingerprint_tracks_fleet_scenario_knobs() {
        let base = CbirFleetScenario::sharded(4, ShardPlacement::NearStorage, 2);
        let variants = [
            CbirFleetScenario::sharded(8, ShardPlacement::NearStorage, 2),
            CbirFleetScenario::sharded(4, ShardPlacement::NearMemory, 2),
            CbirFleetScenario::sharded(4, ShardPlacement::NearStorage, 4),
            CbirFleetScenario::sharded(4, ShardPlacement::NearStorage, 2)
                .map_fleet(|f| f.with_replication(2)),
        ];
        let reference = base.config_fingerprint().expect("cacheable");
        let mut seen = vec![reference];
        for (i, v) in variants.iter().enumerate() {
            let fp = v.config_fingerprint().expect("cacheable");
            assert!(!seen.contains(&fp), "variant {i} aliased a fingerprint");
            seen.push(fp);
        }
        assert_eq!(base.config_fingerprint(), Some(reference));
    }

    #[test]
    fn sweep_produces_rows_in_grid_order() {
        // A trimmed sweep via the trait machinery, not the full 10-fleet
        // grid (kept small: this is a unit test, the full grid runs in the
        // integration suite and the experiments binary).
        let fleets: Vec<Box<dyn FleetScenario>> = vec![
            Box::new(CbirFleetScenario::sharded(
                1,
                ShardPlacement::NearStorage,
                2,
            )),
            Box::new(CbirFleetScenario::sharded(
                2,
                ShardPlacement::NearStorage,
                2,
            )),
        ];
        let results = SequentialExecutor.run_fleets(fleets);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "fleet/near-storage/x1");
        assert_eq!(results[1].label, "fleet/near-storage/x2");
        assert_eq!(results[0].report.jobs, 2);
        assert_eq!(results[1].report.jobs, 2);
        // The 2-shard point carries fleet telemetry; the 1-shard point is
        // the unchanged single-machine report.
        assert_eq!(fleet_counter(&results[1].report, "fleet.shards"), 2);
        assert_eq!(fleet_counter(&results[0].report, "fleet.shards"), 0);
    }
}
