//! Deterministic chunked parallelism for the offline CBIR kernels.
//!
//! The same contract as `reach-bench::ScenarioRunner`, applied inside a
//! kernel: work is cut into **fixed-size chunks whose boundaries never
//! depend on the worker count**, every chunk writes a disjoint slice of the
//! output, and each output element is produced by exactly the same scalar
//! code (same floating-point accumulation order) whether the chunk runs on
//! the calling thread or a spawned one. Results are therefore byte-identical
//! at any worker count — there is nothing to re-verify when the machine or
//! `REACH_KERNEL_JOBS` changes, which is what lets the experiments suite
//! keep its byte-identical-stdout determinism contract while the kernels
//! fan out.
//!
//! Chunks are pre-partitioned round-robin instead of pulled from a shared
//! queue: the chunks of one kernel call are uniform in cost, so work
//! stealing would buy nothing and dynamic assignment would add
//! synchronization for zero benefit (scheduling still cannot change the
//! result — it would only add atomics to prove it).

use std::sync::OnceLock;

/// Rows per work unit. Fixed: chunk *boundaries* must not depend on the
/// worker count, or per-chunk code could see different slice extents.
pub(crate) const CHUNK_ROWS: usize = 64;

/// Worker threads used by the parallel kernels: `REACH_KERNEL_JOBS` if set
/// (use `1` to force the sequential path), otherwise the machine's available
/// parallelism.
pub(crate) fn kernel_jobs() -> usize {
    static JOBS: OnceLock<usize> = OnceLock::new();
    *JOBS.get_or_init(|| {
        std::env::var("REACH_KERNEL_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Runs `work` over every item, fanning out across up to `jobs` scoped
/// threads. Item `i` goes to worker `i % jobs` (round-robin), so the
/// partition is a pure function of the item list and the job count — and
/// since each item owns a disjoint `&mut` output slice, the result does not
/// depend on the partition at all.
pub(crate) fn run_items<I, F>(items: Vec<I>, jobs: usize, work: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        for item in items {
            work(item);
        }
        return;
    }
    let mut buckets: Vec<Vec<I>> = Vec::with_capacity(jobs);
    buckets.resize_with(jobs, Vec::new);
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % jobs].push(item);
    }
    let work = &work;
    std::thread::scope(|scope| {
        for bucket in buckets {
            if bucket.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for item in bucket {
                    work(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_items_run_exactly_once() {
        let n = 1000;
        let mut out = vec![0u32; n];
        let items: Vec<(usize, &mut u32)> = out.iter_mut().enumerate().collect();
        run_items(items, 4, |(i, slot)| *slot = i as u32 + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let n = 257;
        let mut seq = vec![0u64; n];
        let mut par = vec![0u64; n];
        run_items(seq.iter_mut().enumerate().collect(), 1, |(i, s)| {
            *s = (i as u64).wrapping_mul(0x9e37_79b9)
        });
        run_items(par.iter_mut().enumerate().collect(), 7, |(i, s)| {
            *s = (i as u64).wrapping_mul(0x9e37_79b9)
        });
        assert_eq!(seq, par);
    }
}
