//! CBIR experiment points as [`Scenario`]s.
//!
//! Every figure point, ablation point and sweep point in this crate is a
//! [`CbirScenario`]: a machine blueprint, a [`CbirPipeline`] deployment,
//! a batch count and an execution mode. The experiment functions in
//! [`crate::experiments`] and [`crate::ablations`] build batches of these
//! and hand them to a [`reach::ScenarioExecutor`] — the sequential one by
//! default, or `reach-bench`'s thread-parallel `ScenarioRunner`, which by
//! contract produces byte-identical results.

use crate::pipeline::{CbirPipeline, CbirStage};
use reach::{ExecMode, Machine, MachineBlueprint, RunReport, Scenario, SystemConfig};

/// Blueprint for `mapping`-style runs with the given number of
/// near-memory / near-storage instances (the paper's Table II shape
/// otherwise).
#[must_use]
pub fn blueprint_with(nm: usize, ns: usize) -> MachineBlueprint {
    MachineBlueprint::new(
        SystemConfig::paper_table2()
            .with_near_memory(nm.max(1))
            .with_near_storage(ns.max(1)),
    )
}

/// One CBIR simulation point: which machine, which deployment, how many
/// batches, which execution mode, optionally restricted to one stage.
#[derive(Clone, Debug)]
pub struct CbirScenario {
    label: String,
    blueprint: MachineBlueprint,
    pipeline: CbirPipeline,
    stage: Option<CbirStage>,
    batches: usize,
    mode: ExecMode,
}

impl CbirScenario {
    /// A full-pipeline point with GAM cross-batch pipelining.
    #[must_use]
    pub fn full(
        label: impl Into<String>,
        blueprint: MachineBlueprint,
        pipeline: CbirPipeline,
        batches: usize,
    ) -> Self {
        CbirScenario {
            label: label.into(),
            blueprint,
            pipeline,
            stage: None,
            batches,
            mode: ExecMode::Pipelined,
        }
    }

    /// A full-pipeline point run synchronously (the conventional
    /// host-driven baseline flow).
    #[must_use]
    pub fn synchronous(
        label: impl Into<String>,
        blueprint: MachineBlueprint,
        pipeline: CbirPipeline,
        batches: usize,
    ) -> Self {
        CbirScenario {
            mode: ExecMode::Sequential,
            ..Self::full(label, blueprint, pipeline, batches)
        }
    }

    /// A single-stage point (Figures 9–11).
    #[must_use]
    pub fn stage(
        label: impl Into<String>,
        blueprint: MachineBlueprint,
        pipeline: CbirPipeline,
        stage: CbirStage,
        batches: usize,
    ) -> Self {
        CbirScenario {
            stage: Some(stage),
            ..Self::full(label, blueprint, pipeline, batches)
        }
    }

    /// The deployment this point runs.
    #[must_use]
    pub fn pipeline(&self) -> &CbirPipeline {
        &self.pipeline
    }
}

impl Scenario for CbirScenario {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn blueprint(&self) -> MachineBlueprint {
        self.blueprint.clone()
    }

    fn run(&self, machine: &mut Machine) -> RunReport {
        let compiled = match self.stage {
            Some(stage) => self.pipeline.build_stages(machine, &[stage]),
            None => self.pipeline.build(machine),
        };
        compiled.run_mode(machine, self.batches, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CbirMapping;
    use crate::workload::CbirWorkload;
    use reach::scenario::{ScenarioExecutor, SequentialExecutor};

    #[test]
    fn scenario_matches_direct_run() {
        let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
        let scenario = CbirScenario::full("proper/x2", blueprint_with(4, 4), p, 2);
        let via_scenario = scenario.execute();
        let direct = p.run(&mut blueprint_with(4, 4).instantiate(), 2);
        assert_eq!(via_scenario.makespan, direct.makespan);
        assert_eq!(via_scenario.jobs, direct.jobs);
    }

    #[test]
    fn executor_runs_mixed_batch_in_order() {
        let w = CbirWorkload::paper_setup();
        let batch: Vec<Box<dyn Scenario>> = vec![
            Box::new(CbirScenario::synchronous(
                "onchip/sync",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::AllOnChip),
                2,
            )),
            Box::new(CbirScenario::stage(
                "nm/fe",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::AllNearMemory),
                CbirStage::FeatureExtraction,
                1,
            )),
        ];
        let results = SequentialExecutor.run_all(batch);
        assert_eq!(results[0].label, "onchip/sync");
        assert_eq!(results[1].label, "nm/fe");
        assert_eq!(results[1].report.stages.len(), 1);
    }
}
