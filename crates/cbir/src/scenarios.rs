//! CBIR experiment points as [`Scenario`]s.
//!
//! Every figure point, ablation point and sweep point in this crate is a
//! [`CbirScenario`]: a machine blueprint, a [`CbirPipeline`] deployment,
//! a batch count and an execution mode. The experiment functions in
//! [`crate::experiments`] and [`crate::ablations`] build batches of these
//! and hand them to a [`reach::ScenarioExecutor`] — the sequential one by
//! default, or `reach-bench`'s thread-parallel `ScenarioRunner`, which by
//! contract produces byte-identical results.

use crate::pipeline::{CbirPipeline, CbirStage};
use reach::fingerprint::ConfigFingerprint;
use reach::{ExecMode, Machine, MachineBlueprint, RunReport, Scenario, SystemConfig};
use reach_sim::FingerprintBuilder;

/// Blueprint for `mapping`-style runs with the given number of
/// near-memory / near-storage instances (the paper's Table II shape
/// otherwise).
#[must_use]
pub fn blueprint_with(nm: usize, ns: usize) -> MachineBlueprint {
    MachineBlueprint::new(
        SystemConfig::paper_table2()
            .with_near_memory(nm.max(1))
            .with_near_storage(ns.max(1)),
    )
}

/// One CBIR simulation point: which machine, which deployment, how many
/// batches, which execution mode, optionally restricted to one stage.
#[derive(Clone, Debug)]
pub struct CbirScenario {
    label: String,
    blueprint: MachineBlueprint,
    pipeline: CbirPipeline,
    stage: Option<CbirStage>,
    batches: usize,
    mode: ExecMode,
}

impl CbirScenario {
    /// A full-pipeline point with GAM cross-batch pipelining.
    #[must_use]
    pub fn full(
        label: impl Into<String>,
        blueprint: MachineBlueprint,
        pipeline: CbirPipeline,
        batches: usize,
    ) -> Self {
        CbirScenario {
            label: label.into(),
            blueprint,
            pipeline,
            stage: None,
            batches,
            mode: ExecMode::Pipelined,
        }
    }

    /// A full-pipeline point run synchronously (the conventional
    /// host-driven baseline flow).
    #[must_use]
    pub fn synchronous(
        label: impl Into<String>,
        blueprint: MachineBlueprint,
        pipeline: CbirPipeline,
        batches: usize,
    ) -> Self {
        CbirScenario {
            mode: ExecMode::Sequential,
            ..Self::full(label, blueprint, pipeline, batches)
        }
    }

    /// A single-stage point (Figures 9–11).
    #[must_use]
    pub fn stage(
        label: impl Into<String>,
        blueprint: MachineBlueprint,
        pipeline: CbirPipeline,
        stage: CbirStage,
        batches: usize,
    ) -> Self {
        CbirScenario {
            stage: Some(stage),
            ..Self::full(label, blueprint, pipeline, batches)
        }
    }

    /// The deployment this point runs.
    #[must_use]
    pub fn pipeline(&self) -> &CbirPipeline {
        &self.pipeline
    }
}

impl Scenario for CbirScenario {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn blueprint(&self) -> MachineBlueprint {
        self.blueprint.clone()
    }

    fn run(&self, machine: &mut Machine) -> RunReport {
        let compiled = match self.stage {
            Some(stage) => self.pipeline.build_stages(machine, &[stage]),
            None => self.pipeline.build(machine),
        };
        compiled.run_mode(machine, self.batches, self.mode)
    }

    /// A CBIR point is fully described by its blueprint, the pipeline it
    /// compiles for that shape, the batch count, the mode and the seed —
    /// exactly what `run` consumes — so it is always cacheable. The label
    /// is deliberately excluded: two points with different labels but the
    /// same configuration produce byte-identical reports, and the sweep
    /// result cache exists to exploit that.
    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        let stages: &[CbirStage] = match &self.stage {
            Some(stage) => std::slice::from_ref(stage),
            None => &CbirStage::ALL,
        };
        let compiled =
            self.pipeline
                .compile(self.blueprint.config(), self.blueprint.registry(), stages);
        let mut b = FingerprintBuilder::new("reach-cbir-scenario-v1");
        self.blueprint.fingerprint().write_into(&mut b);
        compiled.fingerprint().write_into(&mut b);
        b.write_usize(self.batches);
        b.write_debug(&self.mode);
        b.write_u64(self.seed());
        Some(ConfigFingerprint::from_builder(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CbirMapping;
    use crate::workload::CbirWorkload;
    use reach::scenario::{ScenarioExecutor, SequentialExecutor};

    #[test]
    fn scenario_matches_direct_run() {
        let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
        let scenario = CbirScenario::full("proper/x2", blueprint_with(4, 4), p, 2);
        let via_scenario = scenario.execute();
        let direct = p.run(&mut blueprint_with(4, 4).instantiate(), 2);
        assert_eq!(via_scenario.makespan, direct.makespan);
        assert_eq!(via_scenario.jobs, direct.jobs);
    }

    #[test]
    fn executor_runs_mixed_batch_in_order() {
        let w = CbirWorkload::paper_setup();
        let batch: Vec<Box<dyn Scenario>> = vec![
            Box::new(CbirScenario::synchronous(
                "onchip/sync",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::AllOnChip),
                2,
            )),
            Box::new(CbirScenario::stage(
                "nm/fe",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::AllNearMemory),
                CbirStage::FeatureExtraction,
                1,
            )),
        ];
        let results = SequentialExecutor.run_all(batch);
        assert_eq!(results[0].label, "onchip/sync");
        assert_eq!(results[1].label, "nm/fe");
        assert_eq!(results[1].report.stages.len(), 1);
    }

    #[test]
    fn fingerprint_ignores_the_label() {
        let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
        let a = CbirScenario::full("fig13/ReACH", blueprint_with(4, 4), p, 8);
        let b = CbirScenario::full("ablation/baseline", blueprint_with(4, 4), p, 8);
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        assert!(a.config_fingerprint().is_some());
    }

    /// Flipping any scenario knob — machine shape, mapping, workload,
    /// batches, mode, stage subset — must change the fingerprint; a missed
    /// knob would alias two different simulations in the result cache.
    #[test]
    fn fingerprint_tracks_every_scenario_knob() {
        let w = CbirWorkload::paper_setup();
        let base = CbirScenario::full(
            "x",
            blueprint_with(4, 4),
            CbirPipeline::new(w, CbirMapping::Proper),
            8,
        );
        let mut narrower_batch = w;
        narrower_batch.batch = 8;
        let mut fewer_candidates = w;
        fewer_candidates.candidates_per_query = 1024;
        let variants: Vec<CbirScenario> = vec![
            CbirScenario::full(
                "x",
                blueprint_with(8, 4),
                CbirPipeline::new(w, CbirMapping::Proper),
                8,
            ),
            CbirScenario::full(
                "x",
                blueprint_with(4, 8),
                CbirPipeline::new(w, CbirMapping::Proper),
                8,
            ),
            CbirScenario::full(
                "x",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::AllOnChip),
                8,
            ),
            CbirScenario::full(
                "x",
                blueprint_with(4, 4),
                CbirPipeline::new(narrower_batch, CbirMapping::Proper),
                8,
            ),
            CbirScenario::full(
                "x",
                blueprint_with(4, 4),
                CbirPipeline::new(fewer_candidates, CbirMapping::Proper),
                8,
            ),
            CbirScenario::full(
                "x",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::Proper),
                4,
            ),
            CbirScenario::synchronous(
                "x",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::Proper),
                8,
            ),
            CbirScenario::stage(
                "x",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::Proper),
                CbirStage::Rerank,
                8,
            ),
        ];
        let mut seen = vec![base.config_fingerprint().unwrap()];
        for (i, v) in variants.iter().enumerate() {
            let fp = v.config_fingerprint().unwrap();
            assert!(
                !seen.contains(&fp),
                "variant {i} did not change the fingerprint"
            );
            seen.push(fp);
        }
    }

    #[test]
    fn equal_fingerprints_mean_byte_identical_reports() {
        let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllNearStorage);
        let a = CbirScenario::full("first", blueprint_with(2, 2), p, 2);
        let b = CbirScenario::full("second", blueprint_with(2, 2), p, 2);
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(a.execute().to_string(), b.execute().to_string());
    }
}
