//! Dense linear algebra for the CBIR kernels.
//!
//! Row-major `f32` matrices, a blocked GEMM, squared Euclidean distances and
//! the decomposed-distance identity (Equation 1 of the paper):
//!
//! ```text
//! ||q - c||^2 = ||q||^2 + ||c||^2 - 2 <q, c>
//! ```
//!
//! which turns short-list retrieval into one matrix-matrix product plus a
//! broadcast addition — the shape the GeMM accelerator template runs.

/// A row-major `f32` matrix. Zero-dimension matrices are legal (an empty
/// query batch or candidate list is a normal runtime input, not a bug) —
/// they simply have no rows to borrow.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix. Zero dimensions produce an empty matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix: shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "Matrix::row: {i} out of {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "Matrix::row_mut: {i} out of {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing slice (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// `C = A x B^T` — blocked for cache reuse and parallelized over row
/// chunks. `A` is `m x k`, `B` is `n x k` (both row-major), result is
/// `m x n`. Taking `B` row-major with rows as the *right* operand's columns
/// is an explicitly transposed layout: the inner loop walks two contiguous
/// rows, which matches how the centroid matrix is stored "in columnar
/// fashion" in the paper.
///
/// Large products fan out across threads in fixed 64-row chunks (see
/// [`crate::par`]); every output element is accumulated in the same
/// `t`-ordered lane model on either path — and on either kernel tier,
/// scalar or explicit SIMD (see [`crate::simd`]) — so the result is
/// byte-identical at any worker count and on any host.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    gemm_nt_jobs(a, b, gemm_fanout_jobs(a.rows, b.rows, a.cols))
}

/// Worker count for an `m x k` by `n x k` product: fan out only when the
/// product is worth a thread spawn and there is more than one chunk of
/// output rows to hand out. The FLOP estimate saturates — adversarial
/// huge-dimension [`Matrix`] shapes (degenerate zero-column matrices can
/// carry arbitrarily large row counts) must not overflow the gate.
#[doc(hidden)]
#[must_use]
pub fn gemm_fanout_jobs(m: usize, n: usize, k: usize) -> usize {
    let flops = m.saturating_mul(n).saturating_mul(k);
    if m > crate::par::CHUNK_ROWS && flops >= 1 << 20 {
        crate::par::kernel_jobs()
    } else {
        1
    }
}

/// [`gemm_nt`] with an explicit worker count, bypassing the size gate.
/// Exposed (hidden) so the determinism suite can prove the parallel and
/// sequential paths produce bit-identical output.
#[doc(hidden)]
#[must_use]
pub fn gemm_nt_jobs(a: &Matrix, b: &Matrix, jobs: usize) -> Matrix {
    assert_eq!(
        a.cols, b.cols,
        "gemm_nt: inner dimensions {} vs {}",
        a.cols, b.cols
    );
    let mut c = Matrix::zeros(a.rows, b.rows);
    let n = b.rows;
    if a.rows == 0 || n == 0 {
        return c;
    }
    let chunks: Vec<(usize, &mut [f32])> = c
        .data
        .chunks_mut(crate::par::CHUNK_ROWS * n)
        .enumerate()
        .map(|(ch, slice)| (ch * crate::par::CHUNK_ROWS, slice))
        .collect();
    crate::par::run_items(chunks, jobs, |(row0, out)| {
        gemm_nt_rows(a, b, row0, out);
    });
    c
}

/// SIMD lane count of the register-blocked kernels. Eight `f32` lanes map
/// onto one AVX2 register (or two NEON registers): the scalar kernels keep
/// the lanes independent so the compiler can auto-vectorize them, and the
/// explicit kernels in [`crate::simd`] hold the *same* lanes in real
/// vector registers — which is what makes the two tiers bit-identical.
pub(crate) const LANES: usize = 8;

/// Columns of `B^T` processed per inner-kernel invocation.
const COLS: usize = 4;

/// Folds an 8-lane accumulator with a fixed reduction tree. Every kernel
/// in this module *and* every explicit-SIMD kernel in [`crate::simd`]
/// reduces through this one function, so any two paths that accumulate
/// the same lanes agree bit-for-bit.
#[inline]
pub(crate) fn reduce(acc: [f32; LANES]) -> f32 {
    let q = [
        acc[0] + acc[4],
        acc[1] + acc[5],
        acc[2] + acc[6],
        acc[3] + acc[7],
    ];
    (q[0] + q[2]) + (q[1] + q[3])
}

/// Eight-lane register-blocked dot product: lane `l` accumulates the
/// products at indices `t ≡ l (mod 8)` in increasing `t` order, then the
/// lanes fold through [`reduce`]. The tail (`len % 8`) lands in lanes
/// `0..len%8`; since a lane holding `+0.0` can never turn into `-0.0` by
/// adding products, this is bitwise identical to zero-padding the inputs
/// to a multiple of eight.
///
/// This is *the* accumulation order of the crate: the GEMM micro-kernel,
/// [`norm_sq`] and the k-means assignment all route through it, which is
/// what makes decomposed distances of a vector to itself exactly zero.
///
/// Dispatches to the explicit-SIMD tier ([`crate::simd`]) when the
/// process-wide [`crate::simd::active`] path allows — bit-identical by
/// construction, so call sites never need to care which tier ran.
#[inline]
pub(crate) fn dot8(a: &[f32], b: &[f32]) -> f32 {
    crate::simd::dot8_on(crate::simd::active(), a, b)
}

/// The portable scalar body of [`dot8`] — the reference the SIMD tier is
/// proven against, and the fallback it degrades to.
#[inline]
pub(crate) fn dot8_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let main = a.len() / LANES * LANES;
    let (ah, at) = a.split_at(main);
    let (bh, bt) = b.split_at(main);
    for (av, bv) in ah.chunks_exact(LANES).zip(bh.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += av[l] * bv[l];
        }
    }
    for (l, (x, y)) in at.iter().zip(bt).enumerate() {
        acc[l] += x * y;
    }
    reduce(acc)
}

/// Computes rows `row0 ..` of `C = A x B^T` into `out` (a contiguous
/// row-major slice of whole rows).
///
/// The inner kernel is register-blocked 4 columns x 8 lanes: four rows of
/// `B` are packed into one contiguous panel (reused across the whole
/// i-loop, so it stays cache-hot), and each `A` row accumulates into four
/// independent 8-lane accumulators. Per output element the accumulation
/// order is exactly [`dot8`]'s — lane `l` sums `t ≡ l (mod 8)` in order,
/// then the fixed [`reduce`] tree — so the 4-wide kernel, the remainder
/// columns (plain `dot8`) and any row-chunking all produce bit-identical
/// results.
pub(crate) fn gemm_nt_rows(a: &Matrix, b: &Matrix, row0: usize, out: &mut [f32]) {
    gemm_nt_rows_on(crate::simd::active(), a, b, row0, out);
}

/// [`gemm_nt_rows`] with an explicit kernel tier, bypassing the dispatch
/// cache. Exposed (hidden) so the determinism suite can prove every
/// available [`SimdPath`](crate::simd::SimdPath) produces bit-identical
/// output without racing on the process-wide dispatch override.
#[doc(hidden)]
pub fn gemm_nt_rows_on(
    path: crate::simd::SimdPath,
    a: &Matrix,
    b: &Matrix,
    row0: usize,
    out: &mut [f32],
) {
    let n = b.rows;
    let k = a.cols;
    let rows = out.len() / n;
    // Packed B panel: COLS rows of B, contiguous. One allocation per
    // chunk, reused across every (i, j0) iteration.
    let mut panel = vec![0.0f32; COLS * k];
    for j0 in (0..n).step_by(COLS) {
        if n - j0 >= COLS {
            for c in 0..COLS {
                panel[c * k..(c + 1) * k].copy_from_slice(b.row(j0 + c));
            }
            let (b0, rest) = panel.split_at(k);
            let (b1, rest) = rest.split_at(k);
            let (b2, b3) = rest.split_at(k);
            for i in 0..rows {
                let ar = a.row(row0 + i);
                let vals = crate::simd::kernel4_on(path, ar, b0, b1, b2, b3);
                out[i * n + j0..i * n + j0 + COLS].copy_from_slice(&vals);
            }
        } else {
            // Remainder columns: same order via the one-row dot kernel.
            for j in j0..n {
                let br = b.row(j);
                for i in 0..rows {
                    out[i * n + j] = crate::simd::dot8_on(path, a.row(row0 + i), br);
                }
            }
        }
    }
}

/// The portable scalar inner loop of the 4x8 micro-kernel: one `A` row
/// against four packed `B` rows, four independent 8-lane accumulators.
/// Per output element the accumulation order is exactly [`dot8`]'s. The
/// explicit-SIMD siblings in [`crate::simd`] hold the same four
/// accumulators in vector registers and are proven bit-identical.
#[inline]
pub(crate) fn kernel4_scalar(
    ar: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [f32; COLS] {
    let k = ar.len();
    let main = k / LANES * LANES;
    let mut acc = [[0.0f32; LANES]; COLS];
    for t0 in (0..main).step_by(LANES) {
        for l in 0..LANES {
            let x = ar[t0 + l];
            acc[0][l] += x * b0[t0 + l];
            acc[1][l] += x * b1[t0 + l];
            acc[2][l] += x * b2[t0 + l];
            acc[3][l] += x * b3[t0 + l];
        }
    }
    for (l, t) in (main..k).enumerate() {
        let x = ar[t];
        acc[0][l] += x * b0[t];
        acc[1][l] += x * b1[t];
        acc[2][l] += x * b2[t];
        acc[3][l] += x * b3[t];
    }
    let mut vals = [0.0f32; COLS];
    for (v, lanes) in vals.iter_mut().zip(acc) {
        *v = reduce(lanes);
    }
    vals
}

/// Squared L2 norm of a vector, accumulated in [`dot8`] order so that
/// `norm_sq(v)` is bitwise the kernel's `<v, v>` — the identity
/// `||p||^2 + ||p||^2 - 2<p, p> = 0` then holds *exactly* in `f32`.
#[must_use]
pub fn norm_sq(v: &[f32]) -> f32 {
    dot8(v, v)
}

/// Direct squared Euclidean distance (Equation 2 of the paper).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dist_sq(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "dist_sq: length mismatch");
    p.iter()
        .zip(q)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Decomposed squared distances of a query batch against a point set
/// (Equation 1): one GEMM plus broadcast additions of precomputed norms.
/// Returns the `queries.rows x points.rows` distance matrix.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
#[allow(clippy::needless_range_loop)] // rows of three matrices walked in lockstep
pub fn batch_dist_sq(queries: &Matrix, points: &Matrix) -> Matrix {
    let dots = gemm_nt(queries, points);
    let q_norms: Vec<f32> = (0..queries.rows())
        .map(|i| norm_sq(queries.row(i)))
        .collect();
    // ||c||^2 is precomputed once and reused for every query, exactly as the
    // paper stores it alongside the centroids.
    let p_norms: Vec<f32> = (0..points.rows()).map(|j| norm_sq(points.row(j))).collect();
    let mut out = Matrix::zeros(queries.rows(), points.rows());
    for i in 0..queries.rows() {
        let row = out.row_mut(i);
        let dot_row = dots.row(i);
        for j in 0..points.rows() {
            row[j] = q_norms[i] + p_norms[j] - 2.0 * dot_row[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_small_known_answer() {
        // A = [[1,2],[3,4]], B rows are the columns of the right operand:
        // B = [[5,6],[7,8]] -> C = A x B^T = [[17,23],[39,53]].
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.as_slice(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn gemm_blocks_match_naive_on_odd_sizes() {
        // 37 x 19 x 41: sizes that divide neither the 4-column block nor
        // the 8-lane accumulator. Every element is checked — a broken
        // interior block or mis-handled remainder column cannot hide.
        let a = Matrix::from_vec(37, 19, (0..37 * 19).map(|i| (i % 7) as f32 - 3.0).collect());
        let b = Matrix::from_vec(41, 19, (0..41 * 19).map(|i| (i % 5) as f32 - 2.0).collect());
        let c = gemm_nt(&a, &b);
        for i in 0..37 {
            for j in 0..41 {
                let naive: f32 = (0..19).map(|t| a.row(i)[t] * b.row(j)[t]).sum();
                assert!(
                    (c.row(i)[j] - naive).abs() < 1e-3,
                    "mismatch at ({i}, {j}): {} vs naive {naive}",
                    c.row(i)[j]
                );
            }
        }
    }

    #[test]
    fn gemm_remainder_columns_match_wide_kernel_bitwise() {
        // The same B rows reached through the 4-wide kernel (as columns
        // 0..4 of a 5-column B) and through the remainder path (as the
        // only column) must produce identical bits.
        let k = 19;
        let a = Matrix::from_vec(3, k, (0..3 * k).map(|i| (i as f32).sin()).collect());
        let b5 = Matrix::from_vec(5, k, (0..5 * k).map(|i| (i as f32).cos()).collect());
        let wide = gemm_nt(&a, &b5);
        for j in 0..5 {
            let b1 = Matrix::from_vec(1, k, b5.row(j).to_vec());
            let narrow = gemm_nt(&a, &b1);
            for i in 0..3 {
                assert_eq!(wide.row(i)[j].to_bits(), narrow.row(i)[0].to_bits());
            }
        }
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        // A rerank over an empty candidate list is a normal runtime input.
        let q = Matrix::from_vec(3, 4, vec![1.0; 12]);
        let none = Matrix::zeros(0, 4);
        let d = batch_dist_sq(&q, &none);
        assert_eq!((d.rows(), d.cols()), (3, 0));
        let d = batch_dist_sq(&none, &q);
        assert_eq!((d.rows(), d.cols()), (0, 3));
        assert!(d.as_slice().is_empty());
        let c = gemm_nt(&none, &none);
        assert_eq!((c.rows(), c.cols()), (0, 0));
        assert_eq!(norm_sq(&[]), 0.0);
    }

    #[test]
    fn self_distance_is_exactly_zero_in_decomposed_form() {
        // norm_sq and the GEMM kernel share one accumulation order, so
        // ||p||^2 + ||p||^2 - 2<p,p> cancels exactly — no epsilon.
        let p = Matrix::from_vec(1, 19, (0..19).map(|i| (i as f32).sin() * 3.7).collect());
        let d = batch_dist_sq(&p, &p);
        assert_eq!(d.row(0)[0], 0.0);
    }

    #[test]
    fn dist_identities() {
        let p = [1.0, 2.0, 3.0];
        let q = [4.0, 6.0, 3.0];
        assert_eq!(dist_sq(&p, &q), 25.0);
        assert_eq!(dist_sq(&p, &p), 0.0);
        assert_eq!(norm_sq(&p), 14.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_rejected() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn fanout_gate_survives_adversarial_shapes() {
        // Regression: the FLOP estimate used to be `m * n * k`, which
        // overflows (debug panic, release wrap) on degenerate shapes like
        // zero-column matrices with astronomically many rows — legal
        // `Matrix` values, since `rows * cols` still equals `data.len()`.
        let jobs = gemm_fanout_jobs(usize::MAX, usize::MAX, usize::MAX);
        assert!(jobs >= 1, "saturated estimate must still pick a job count");
        // A zero-FLOP product never fans out, no matter the row counts...
        assert_eq!(gemm_fanout_jobs(usize::MAX, usize::MAX, 0), 1);
        // ...and neither does a single-row output, however wide.
        assert_eq!(gemm_fanout_jobs(1, usize::MAX, usize::MAX), 1);
    }

    proptest! {
        /// Equation 1 == Equation 2: the decomposition is exact (up to f32
        /// rounding) for every input — the identity the short-list
        /// accelerator relies on.
        #[test]
        fn decomposed_distance_matches_direct(
            qs in proptest::collection::vec(-10.0f32..10.0, 8 * 4),
            ps in proptest::collection::vec(-10.0f32..10.0, 8 * 6),
        ) {
            let queries = Matrix::from_vec(4, 8, qs);
            let points = Matrix::from_vec(6, 8, ps);
            let d = batch_dist_sq(&queries, &points);
            for i in 0..4 {
                for j in 0..6 {
                    let direct = dist_sq(queries.row(i), points.row(j));
                    let scale = direct.abs().max(1.0);
                    prop_assert!((d.row(i)[j] - direct).abs() / scale < 1e-3,
                        "i={i} j={j}: {} vs {direct}", d.row(i)[j]);
                }
            }
        }

        /// GEMM distributes over scalar multiplication of an operand.
        #[test]
        fn gemm_scales_linearly(
            xs in proptest::collection::vec(-4.0f32..4.0, 6 * 5),
            k in -3.0f32..3.0,
        ) {
            let a = Matrix::from_vec(6, 5, xs.clone());
            let b = Matrix::from_vec(3, 5, xs[..15].to_vec());
            let scaled = Matrix::from_vec(6, 5, xs.iter().map(|x| x * k).collect());
            let c1 = gemm_nt(&scaled, &b);
            let c0 = gemm_nt(&a, &b);
            for i in 0..6 {
                for j in 0..3 {
                    let want = c0.row(i)[j] * k;
                    prop_assert!((c1.row(i)[j] - want).abs() < 1e-2 * want.abs().max(1.0));
                }
            }
        }
    }
}
