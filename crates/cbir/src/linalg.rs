//! Dense linear algebra for the CBIR kernels.
//!
//! Row-major `f32` matrices, a blocked GEMM, squared Euclidean distances and
//! the decomposed-distance identity (Equation 1 of the paper):
//!
//! ```text
//! ||q - c||^2 = ||q||^2 + ||c||^2 - 2 <q, c>
//! ```
//!
//! which turns short-list retrieval into one matrix-matrix product plus a
//! broadcast addition — the shape the GeMM accelerator template runs.

/// A row-major `f32` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "Matrix: zero dimension");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix: shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "Matrix::row: {i} out of {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "Matrix::row_mut: {i} out of {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing slice (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// `C = A x B^T` — blocked for cache reuse and parallelized over row
/// chunks. `A` is `m x k`, `B` is `n x k` (both row-major), result is
/// `m x n`. Taking `B` row-major with rows as the *right* operand's columns
/// is an explicitly transposed layout: the inner loop walks two contiguous
/// rows, which matches how the centroid matrix is stored "in columnar
/// fashion" in the paper.
///
/// Large products fan out across threads in fixed 64-row chunks (see
/// [`crate::par`]); every output element is accumulated by the same scalar
/// `t`-ordered loop on either path, so the result is byte-identical at any
/// worker count.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    // Fan out only when the product is worth a thread spawn and there is
    // more than one chunk of output rows to hand out.
    let flops = a.rows * b.rows * a.cols;
    let jobs = if a.rows > crate::par::CHUNK_ROWS && flops >= 1 << 20 {
        crate::par::kernel_jobs()
    } else {
        1
    };
    gemm_nt_jobs(a, b, jobs)
}

/// [`gemm_nt`] with an explicit worker count, bypassing the size gate.
/// Exposed (hidden) so the determinism suite can prove the parallel and
/// sequential paths produce bit-identical output.
#[doc(hidden)]
#[must_use]
pub fn gemm_nt_jobs(a: &Matrix, b: &Matrix, jobs: usize) -> Matrix {
    assert_eq!(
        a.cols, b.cols,
        "gemm_nt: inner dimensions {} vs {}",
        a.cols, b.cols
    );
    let mut c = Matrix::zeros(a.rows, b.rows);
    let n = b.rows;
    let chunks: Vec<(usize, &mut [f32])> = c
        .data
        .chunks_mut(crate::par::CHUNK_ROWS * n)
        .enumerate()
        .map(|(ch, slice)| (ch * crate::par::CHUNK_ROWS, slice))
        .collect();
    crate::par::run_items(chunks, jobs, |(row0, out)| {
        gemm_nt_rows(a, b, row0, out);
    });
    c
}

/// Computes rows `row0 ..` of `C = A x B^T` into `out` (a contiguous
/// row-major slice of whole rows). One scalar accumulation order per output
/// element, independent of how rows are grouped into chunks.
fn gemm_nt_rows(a: &Matrix, b: &Matrix, row0: usize, out: &mut [f32]) {
    const BLOCK: usize = 32;
    let n = b.rows;
    let rows = out.len() / n;
    for i0 in (0..rows).step_by(BLOCK) {
        for j0 in (0..n).step_by(BLOCK) {
            for i in i0..(i0 + BLOCK).min(rows) {
                let ar = a.row(row0 + i);
                for j in j0..(j0 + BLOCK).min(n) {
                    let br = b.row(j);
                    let mut acc = 0.0f32;
                    for t in 0..a.cols {
                        acc += ar[t] * br[t];
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
}

/// Squared L2 norm of a vector.
#[must_use]
pub fn norm_sq(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum()
}

/// Direct squared Euclidean distance (Equation 2 of the paper).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dist_sq(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "dist_sq: length mismatch");
    p.iter()
        .zip(q)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Decomposed squared distances of a query batch against a point set
/// (Equation 1): one GEMM plus broadcast additions of precomputed norms.
/// Returns the `queries.rows x points.rows` distance matrix.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
#[allow(clippy::needless_range_loop)] // rows of three matrices walked in lockstep
pub fn batch_dist_sq(queries: &Matrix, points: &Matrix) -> Matrix {
    let dots = gemm_nt(queries, points);
    let q_norms: Vec<f32> = (0..queries.rows())
        .map(|i| norm_sq(queries.row(i)))
        .collect();
    // ||c||^2 is precomputed once and reused for every query, exactly as the
    // paper stores it alongside the centroids.
    let p_norms: Vec<f32> = (0..points.rows()).map(|j| norm_sq(points.row(j))).collect();
    let mut out = Matrix::zeros(queries.rows(), points.rows());
    for i in 0..queries.rows() {
        let row = out.row_mut(i);
        let dot_row = dots.row(i);
        for j in 0..points.rows() {
            row[j] = q_norms[i] + p_norms[j] - 2.0 * dot_row[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_small_known_answer() {
        // A = [[1,2],[3,4]], B rows are the columns of the right operand:
        // B = [[5,6],[7,8]] -> C = A x B^T = [[17,23],[39,53]].
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.as_slice(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn gemm_blocks_match_naive_on_odd_sizes() {
        // 37 x 19 x 41: sizes that do not divide the block size.
        let a = Matrix::from_vec(37, 19, (0..37 * 19).map(|i| (i % 7) as f32 - 3.0).collect());
        let b = Matrix::from_vec(41, 19, (0..41 * 19).map(|i| (i % 5) as f32 - 2.0).collect());
        let c = gemm_nt(&a, &b);
        for i in [0, 17, 36] {
            for j in [0, 23, 40] {
                let naive: f32 = (0..19).map(|t| a.row(i)[t] * b.row(j)[t]).sum();
                assert!((c.row(i)[j] - naive).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn dist_identities() {
        let p = [1.0, 2.0, 3.0];
        let q = [4.0, 6.0, 3.0];
        assert_eq!(dist_sq(&p, &q), 25.0);
        assert_eq!(dist_sq(&p, &p), 0.0);
        assert_eq!(norm_sq(&p), 14.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_rejected() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    proptest! {
        /// Equation 1 == Equation 2: the decomposition is exact (up to f32
        /// rounding) for every input — the identity the short-list
        /// accelerator relies on.
        #[test]
        fn decomposed_distance_matches_direct(
            qs in proptest::collection::vec(-10.0f32..10.0, 8 * 4),
            ps in proptest::collection::vec(-10.0f32..10.0, 8 * 6),
        ) {
            let queries = Matrix::from_vec(4, 8, qs);
            let points = Matrix::from_vec(6, 8, ps);
            let d = batch_dist_sq(&queries, &points);
            for i in 0..4 {
                for j in 0..6 {
                    let direct = dist_sq(queries.row(i), points.row(j));
                    let scale = direct.abs().max(1.0);
                    prop_assert!((d.row(i)[j] - direct).abs() / scale < 1e-3,
                        "i={i} j={j}: {} vs {direct}", d.row(i)[j]);
                }
            }
        }

        /// GEMM distributes over scalar multiplication of an operand.
        #[test]
        fn gemm_scales_linearly(
            xs in proptest::collection::vec(-4.0f32..4.0, 6 * 5),
            k in -3.0f32..3.0,
        ) {
            let a = Matrix::from_vec(6, 5, xs.clone());
            let b = Matrix::from_vec(3, 5, xs[..15].to_vec());
            let scaled = Matrix::from_vec(6, 5, xs.iter().map(|x| x * k).collect());
            let c1 = gemm_nt(&scaled, &b);
            let c0 = gemm_nt(&a, &b);
            for i in 0..6 {
                for j in 0..3 {
                    let want = c0.row(i)[j] * k;
                    prop_assert!((c1.row(i)[j] - want).abs() < 1e-2 * want.abs().max(1.0));
                }
            }
        }
    }
}
