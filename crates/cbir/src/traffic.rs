//! Open-loop CBIR traffic serving: the latency-vs-offered-load curve.
//!
//! The paper reports closed-loop throughput (fig. 13); this module measures
//! what the north star actually promises — serving query traffic. A
//! [`CbirTrafficScenario`] drives a Poisson / bursty / trace-driven
//! [`ArrivalProcess`] of query batches into the GAM through a bounded
//! admission queue ([`reach::OpenLoop`]) and reports the latency quantiles
//! of the admitted jobs plus the rejection count. Sweeping the arrival rate
//! across all four placements locates each placement's *saturation knee*:
//! the offered load where queueing delay takes over and the admission queue
//! starts bouncing arrivals. The proper ReACH mapping holds its knee at
//! several times the on-chip baseline's rate — the serving-traffic
//! restatement of the paper's throughput claim.
//!
//! Determinism contract: arrivals come from the scenario seed via
//! [`reach_sim::rng`] streams, latency quantiles from integer-bucketed
//! histograms, so every row is byte-identical at any `--jobs` and replays
//! through the scenario-result cache (fingerprint `reach-cbir-traffic-v1`
//! covers the arrival process, offered count, queue depth and seed).

use crate::pipeline::{CbirMapping, CbirPipeline, CbirStage};
use crate::scenarios::blueprint_with;
use crate::workload::CbirWorkload;
use reach::fingerprint::ConfigFingerprint;
use reach::traffic::ArrivalProcess;
use reach::{
    Machine, MachineBlueprint, MetricValue, OpenLoop, RunReport, Scenario, ScenarioExecutor,
    SimDuration,
};
use reach_sim::FingerprintBuilder;
use std::fmt;

/// Offered arrival rates swept per placement, in query batches per second.
pub const TRAFFIC_RATES_PER_SEC: [u64; 5] = [1, 2, 4, 8, 16];

/// Batch arrivals offered at each sweep point.
pub const TRAFFIC_OFFERED: usize = 24;

/// Admission-queue depth: arrivals finding this many jobs in flight bounce.
pub const TRAFFIC_QUEUE_DEPTH: usize = 4;

/// One open-loop serving point: an arrival process offering query batches
/// to a CBIR deployment behind a bounded admission queue.
#[derive(Clone, Debug)]
pub struct CbirTrafficScenario {
    label: String,
    blueprint: MachineBlueprint,
    pipeline: CbirPipeline,
    arrival: ArrivalProcess,
    offered: usize,
    queue_depth: usize,
    seed: u64,
}

impl CbirTrafficScenario {
    /// A Poisson point at `rate_per_sec` batch arrivals per second on the
    /// paper-shape machine. The arrival stream derives from the session
    /// seed, so `--seed N` reshuffles the arrivals of every point at once.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is zero.
    #[must_use]
    pub fn poisson(mapping: CbirMapping, rate_per_sec: u64) -> Self {
        assert!(rate_per_sec > 0, "CbirTrafficScenario: zero arrival rate");
        let seed = reach_sim::rng::session_seed();
        Self::with_arrival(
            format!("traffic/{}/{}qps", mapping.name(), rate_per_sec),
            mapping,
            ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs_f64(1.0 / rate_per_sec as f64),
                seed,
            },
            TRAFFIC_OFFERED,
            TRAFFIC_QUEUE_DEPTH,
        )
    }

    /// A point with an explicit arrival process and admission bound.
    #[must_use]
    pub fn with_arrival(
        label: impl Into<String>,
        mapping: CbirMapping,
        arrival: ArrivalProcess,
        offered: usize,
        queue_depth: usize,
    ) -> Self {
        CbirTrafficScenario {
            label: label.into(),
            blueprint: blueprint_with(4, 4),
            pipeline: CbirPipeline::new(CbirWorkload::paper_setup(), mapping),
            arrival,
            offered,
            queue_depth,
            seed: reach_sim::rng::session_seed(),
        }
    }

    /// The arrival process this point offers.
    #[must_use]
    pub fn arrival(&self) -> &ArrivalProcess {
        &self.arrival
    }
}

impl Scenario for CbirTrafficScenario {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn blueprint(&self) -> MachineBlueprint {
        self.blueprint.clone()
    }

    fn run(&self, machine: &mut Machine) -> RunReport {
        let compiled = self.pipeline.build(machine);
        let open = OpenLoop {
            arrival: self.arrival.clone(),
            offered: self.offered,
            queue_depth: self.queue_depth,
        };
        open.serve(&compiled, machine).run
    }

    /// Everything `run` consumes: machine shape, compiled pipeline, the
    /// arrival process (variant, parameters and its embedded seed, via the
    /// debug rendering), offered count, queue depth and the scenario seed.
    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        let compiled = self.pipeline.compile(
            self.blueprint.config(),
            self.blueprint.registry(),
            &CbirStage::ALL,
        );
        let mut b = FingerprintBuilder::new("reach-cbir-traffic-v1");
        self.blueprint.fingerprint().write_into(&mut b);
        compiled.fingerprint().write_into(&mut b);
        b.write_debug(&self.arrival);
        b.write_usize(self.offered);
        b.write_usize(self.queue_depth);
        b.write_u64(self.seed);
        Some(ConfigFingerprint::from_builder(b))
    }
}

/// One rendered sweep row: a (source, rate) point's admission ledger and
/// latency quantiles.
#[derive(Clone, Debug)]
pub struct TrafficRow {
    /// Placement name for sweep rows; "bursty" / "trace" for the demo rows.
    pub source: &'static str,
    /// Offered arrival rate in batches per second.
    pub rate_per_sec: u64,
    /// Arrivals offered.
    pub offered: usize,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals bounced by the admission queue.
    pub rejected: u64,
    /// Mean end-to-end latency of admitted jobs, ms.
    pub mean_ms: f64,
    /// Latency quantile upper bounds of admitted jobs, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
}

impl fmt::Display for TrafficRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} @ {:>2}/s  admitted {:>2}/{:<2} rejected {:>2}  mean {:>9.3}ms  \
             p50 {:>9.3}ms  p95 {:>9.3}ms  p99 {:>9.3}ms  p999 {:>9.3}ms",
            self.source,
            self.rate_per_sec,
            self.admitted,
            self.offered,
            self.rejected,
            self.mean_ms,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.p999_ms
        )
    }
}

/// Final value of a latency counter in a report's telemetry (0 if absent).
fn latency_counter(report: &RunReport, name: &str) -> u64 {
    match report.metrics.get(name) {
        Some(MetricValue::Counter { value }) => *value,
        _ => 0,
    }
}

fn row_from(source: &'static str, rate_per_sec: u64, offered: usize, r: &RunReport) -> TrafficRow {
    let ms = |ps: u64| ps as f64 * 1e-9;
    TrafficRow {
        source,
        rate_per_sec,
        offered,
        admitted: r.jobs,
        rejected: r.gam.jobs_rejected,
        mean_ms: r.job_latency_mean.as_ms_f64(),
        p50_ms: ms(latency_counter(r, "latency.job.p50_ps")),
        p95_ms: ms(latency_counter(r, "latency.job.p95_ps")),
        p99_ms: ms(latency_counter(r, "latency.job.p99_ps")),
        p999_ms: ms(latency_counter(r, "latency.job.p999_ps")),
    }
}

/// The bursty demo point: MMPP on/off arrivals averaging `rate_per_sec`
/// with a 1-in-3 duty cycle (3x the rate inside bursts).
#[must_use]
pub fn bursty_demo(rate_per_sec: u64) -> CbirTrafficScenario {
    let seed = reach_sim::rng::session_seed();
    CbirTrafficScenario::with_arrival(
        format!("traffic/bursty/{rate_per_sec}qps"),
        CbirMapping::Proper,
        ArrivalProcess::Bursty {
            on_gap: SimDuration::from_secs_f64(1.0 / (3.0 * rate_per_sec as f64)),
            burst: SimDuration::from_ms(1_500),
            idle: SimDuration::from_ms(3_000),
            seed,
        },
        TRAFFIC_OFFERED,
        TRAFFIC_QUEUE_DEPTH,
    )
}

/// The trace demo point: replays the recorded arrival instants of
/// [`bursty_demo`] at the same rate — proof that a captured trace
/// reproduces a live process bit-for-bit.
#[must_use]
pub fn trace_demo(rate_per_sec: u64) -> CbirTrafficScenario {
    let gaps = bursty_demo(rate_per_sec)
        .arrival()
        .record_trace(TRAFFIC_OFFERED);
    CbirTrafficScenario::with_arrival(
        format!("traffic/trace/{rate_per_sec}qps"),
        CbirMapping::Proper,
        ArrivalProcess::Trace { gaps },
        TRAFFIC_OFFERED,
        TRAFFIC_QUEUE_DEPTH,
    )
}

/// Runs the saturation-knee sweep — [`TRAFFIC_RATES_PER_SEC`] Poisson rates
/// at all four placements, plus the bursty/trace replay pair — through
/// `executor` and reduces each point to a [`TrafficRow`].
#[must_use]
pub fn traffic_knee_with(executor: &dyn ScenarioExecutor) -> Vec<TrafficRow> {
    let demo_rate = TRAFFIC_RATES_PER_SEC[2];
    let mut scenarios: Vec<Box<dyn Scenario>> = Vec::new();
    for mapping in CbirMapping::ALL {
        for &rate in &TRAFFIC_RATES_PER_SEC {
            scenarios.push(Box::new(CbirTrafficScenario::poisson(mapping, rate)));
        }
    }
    scenarios.push(Box::new(bursty_demo(demo_rate)));
    scenarios.push(Box::new(trace_demo(demo_rate)));
    let results = executor.run_all(scenarios);

    let mut rows = Vec::with_capacity(results.len());
    for (m, mapping) in CbirMapping::ALL.into_iter().enumerate() {
        let group =
            &results[m * TRAFFIC_RATES_PER_SEC.len()..(m + 1) * TRAFFIC_RATES_PER_SEC.len()];
        for (r, &rate) in group.iter().zip(&TRAFFIC_RATES_PER_SEC) {
            rows.push(row_from(mapping.name(), rate, TRAFFIC_OFFERED, &r.report));
        }
    }
    let demos = &results[results.len() - 2..];
    rows.push(row_from(
        "bursty",
        demo_rate,
        TRAFFIC_OFFERED,
        &demos[0].report,
    ));
    rows.push(row_from(
        "trace",
        demo_rate,
        TRAFFIC_OFFERED,
        &demos[1].report,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::SequentialExecutor;

    #[test]
    fn low_rate_admits_everything() {
        let r = CbirTrafficScenario::poisson(CbirMapping::Proper, 1).execute();
        assert_eq!(r.jobs, TRAFFIC_OFFERED as u64);
        assert_eq!(r.gam.jobs_rejected, 0);
    }

    #[test]
    fn saturating_rate_rejects_and_still_terminates() {
        let r = CbirTrafficScenario::poisson(CbirMapping::AllOnChip, 16).execute();
        assert!(r.gam.jobs_rejected > 0, "no rejections at 16 qps on-chip");
        assert_eq!(r.jobs + r.gam.jobs_rejected, TRAFFIC_OFFERED as u64);
    }

    #[test]
    fn trace_replay_matches_bursty_source_byte_for_byte() {
        let rate = TRAFFIC_RATES_PER_SEC[2];
        let bursty = bursty_demo(rate).execute();
        let trace = trace_demo(rate).execute();
        assert_eq!(bursty.to_string(), trace.to_string());
        assert_eq!(bursty.gam.jobs_rejected, trace.gam.jobs_rejected);
    }

    #[test]
    fn reports_export_per_stage_quantiles() {
        let r = CbirTrafficScenario::poisson(CbirMapping::Proper, 2).execute();
        for stage in ["1-feature-extraction", "2-short-list", "3-rerank"] {
            for q in ["p50_ps", "p95_ps", "p99_ps", "p999_ps", "samples"] {
                let name = format!("latency.stage.{stage}.{q}");
                assert!(
                    matches!(r.metrics.get(&name), Some(MetricValue::Counter { .. })),
                    "missing {name}"
                );
            }
        }
        assert!(
            latency_counter(&r, "latency.job.p999_ps") >= latency_counter(&r, "latency.job.p50_ps")
        );
    }

    #[test]
    fn fingerprint_tracks_every_traffic_knob() {
        let base = CbirTrafficScenario::poisson(CbirMapping::Proper, 4);
        let mut deeper = base.clone();
        deeper.queue_depth += 1;
        let mut more_offered = base.clone();
        more_offered.offered += 1;
        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        let variants: Vec<CbirTrafficScenario> = vec![
            CbirTrafficScenario::poisson(CbirMapping::Proper, 8),
            CbirTrafficScenario::poisson(CbirMapping::AllOnChip, 4),
            bursty_demo(4),
            trace_demo(4),
            deeper,
            more_offered,
            reseeded,
        ];
        let mut seen = vec![base.config_fingerprint().unwrap()];
        for (i, v) in variants.iter().enumerate() {
            let fp = v.config_fingerprint().unwrap();
            assert!(
                !seen.contains(&fp),
                "variant {i} did not change the fingerprint"
            );
            seen.push(fp);
        }
    }

    #[test]
    fn equal_fingerprints_mean_byte_identical_reports() {
        let a = CbirTrafficScenario::poisson(CbirMapping::AllNearStorage, 4);
        let b = CbirTrafficScenario::poisson(CbirMapping::AllNearStorage, 4);
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(a.execute().to_string(), b.execute().to_string());
    }

    #[test]
    fn knee_rows_cover_every_placement_and_the_demo_pair() {
        let rows = traffic_knee_with(&SequentialExecutor);
        assert_eq!(
            rows.len(),
            CbirMapping::ALL.len() * TRAFFIC_RATES_PER_SEC.len() + 2
        );
        for mapping in CbirMapping::ALL {
            let group: Vec<&TrafficRow> =
                rows.iter().filter(|r| r.source == mapping.name()).collect();
            assert_eq!(group.len(), TRAFFIC_RATES_PER_SEC.len());
            // The knee contract the CI validator re-checks from stdout:
            // latency and rejections never improve as offered load grows,
            // and the lowest rate is below every placement's knee.
            assert_eq!(group[0].rejected, 0, "{} rejects at 1 qps", mapping.name());
            for w in group.windows(2) {
                assert!(
                    w[1].mean_ms >= w[0].mean_ms,
                    "{} mean latency dipped between {} and {} qps",
                    mapping.name(),
                    w[0].rate_per_sec,
                    w[1].rate_per_sec
                );
                assert!(w[1].rejected >= w[0].rejected);
            }
        }
        let bursty = rows.iter().find(|r| r.source == "bursty").unwrap();
        let trace = rows.iter().find(|r| r.source == "trace").unwrap();
        assert_eq!(bursty.mean_ms, trace.mean_ms);
        assert_eq!(bursty.rejected, trace.rejected);
    }
}
