//! # reach-cbir — content-based image retrieval on ReACH
//!
//! The paper's case study, in two halves that share one pipeline
//! description:
//!
//! **Functional** — a laptop-scale but algorithmically complete CBIR
//! system: a deterministic feature-extraction network ([`features`]),
//! k-means++ clustering ([`kmeans`]), an IVF index with decomposed-distance
//! short-list retrieval and exact rerank ([`ivf`]), top-K selection
//! ([`topk`]), dense linear algebra ([`linalg`]) and synthetic
//! Gaussian-mixture datasets with recall metrics ([`dataset`]).
//!
//! **Timed** — the billion-scale workload descriptor ([`workload`]) and the
//! mapping of the three pipeline stages onto the compute hierarchy
//! ([`pipeline`]), which drive the `reach` machine model to reproduce every
//! figure and table of the paper's evaluation ([`experiments`]).
//!
//! The split mirrors the paper's own method: retrieval *quality* is a
//! property of the algorithms (billion-scale behaviour is extrapolated from
//! the same math at laptop scale), while *performance and energy* come from
//! the cycle-level model fed with the billion-scale geometry.

// `deny`, not `forbid`: the one sanctioned exception is `crate::simd`,
// whose `#[target_feature]` kernels opt back in with a module-local
// `allow` — `ci/lint-hotpath.sh` enforces that no other module does.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod binary;
pub mod cache;
pub mod dataset;
pub mod experiments;
pub mod features;
pub mod fleet;
pub mod ivf;
pub mod kmeans;
pub mod linalg;
pub(crate) mod par;
pub mod pca;
pub mod pipeline;
pub mod pq;
pub mod scenarios;
pub mod simd;
pub mod topk;
pub mod traffic;
pub mod workload;

pub use binary::BinaryCoder;
pub use cache::QueryContext;
pub use dataset::{Dataset, RecallReport};
pub use features::FeatureNet;
pub use fleet::CbirFleetScenario;
pub use ivf::IvfIndex;
pub use pca::Pca;
pub use pipeline::{CbirMapping, CbirPipeline};
pub use pq::ProductQuantizer;
pub use scenarios::{blueprint_with, CbirScenario};
pub use topk::{merge_top_k, top_k};
pub use traffic::CbirTrafficScenario;
pub use workload::CbirWorkload;
