//! Principal component analysis — the paper's dimensionality compression.
//!
//! "We extract the feature vector from images using the VGGNet neural
//! network and PCA compression with a dimensionality (D) of 96." This
//! module implements that offline step: mean-centering, covariance via
//! Gram accumulation, and the leading eigenvectors by orthogonal power
//! iteration (subspace iteration) — dependency-free and deterministic.

use crate::linalg::Matrix;

/// A fitted PCA transform.
///
/// # Example
///
/// ```
/// use reach_cbir::linalg::Matrix;
/// use reach_cbir::Pca;
///
/// // Points on the x-axis embedded in 3-D: one component explains them.
/// let data = Matrix::from_vec(4, 3, vec![
///     1.0, 0.0, 0.0,  2.0, 0.0, 0.0,  3.0, 0.0, 0.0,  4.0, 0.0, 0.0,
/// ]);
/// let pca = Pca::fit(&data, 1, 20);
/// let z = pca.transform(&[2.5, 0.0, 0.0]);
/// let back = pca.inverse_transform(&z);
/// assert!((back[0] - 2.5).abs() < 1e-4);
/// ```
#[derive(Clone, Debug)]
pub struct Pca {
    mean: Vec<f32>,
    /// `components x input_dim`, rows orthonormal.
    components: Matrix,
}

impl Pca {
    /// Fits `k` principal components to the rows of `data` using subspace
    /// iteration with `iters` rounds (20–50 suffices for well-separated
    /// spectra).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the input dimensionality, or if
    /// fewer than two samples are provided.
    #[must_use]
    pub fn fit(data: &Matrix, k: usize, iters: usize) -> Self {
        let n = data.rows();
        let d = data.cols();
        assert!(k > 0 && k <= d, "Pca::fit: k={k} out of range for d={d}");
        assert!(n >= 2, "Pca::fit: need at least two samples");

        // Mean.
        let mut mean = vec![0.0f32; d];
        for i in 0..n {
            for (m, &x) in mean.iter_mut().zip(data.row(i)) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }

        // Covariance (d x d), accumulated in f64 for stability.
        let mut cov = vec![0.0f64; d * d];
        for i in 0..n {
            let row = data.row(i);
            for a in 0..d {
                let xa = f64::from(row[a] - mean[a]);
                let base = a * d;
                for b in a..d {
                    cov[base + b] += xa * f64::from(row[b] - mean[b]);
                }
            }
        }
        let norm = 1.0 / (n - 1) as f64;
        for a in 0..d {
            for b in a..d {
                let v = cov[a * d + b] * norm;
                cov[a * d + b] = v;
                cov[b * d + a] = v;
            }
        }

        // Subspace iteration: V <- orth(C V).
        // Deterministic start: shifted identity columns.
        let mut v = vec![0.0f64; d * k];
        for j in 0..k {
            v[(j % d) * k + j] = 1.0;
            v[((j + 1) % d) * k + j] = 0.5;
        }
        for _ in 0..iters {
            // W = C * V  (d x k)
            let mut w = vec![0.0f64; d * k];
            for a in 0..d {
                for b in 0..d {
                    let c = cov[a * d + b];
                    if c != 0.0 {
                        for j in 0..k {
                            w[a * k + j] += c * v[b * k + j];
                        }
                    }
                }
            }
            // Gram-Schmidt orthonormalization of W's columns.
            for j in 0..k {
                for p in 0..j {
                    let dot: f64 = (0..d).map(|a| w[a * k + j] * w[a * k + p]).sum();
                    for a in 0..d {
                        w[a * k + j] -= dot * w[a * k + p];
                    }
                }
                let norm: f64 = (0..d)
                    .map(|a| w[a * k + j] * w[a * k + j])
                    .sum::<f64>()
                    .sqrt();
                if norm > 1e-12 {
                    for a in 0..d {
                        w[a * k + j] /= norm;
                    }
                } else {
                    // Degenerate direction: reset to a unit vector.
                    for a in 0..d {
                        w[a * k + j] = if a == j % d { 1.0 } else { 0.0 };
                    }
                }
            }
            v = w;
        }

        let mut components = Matrix::zeros(k, d);
        for j in 0..k {
            for a in 0..d {
                components.row_mut(j)[a] = v[a * k + j] as f32;
            }
        }
        Pca { mean, components }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.components.cols()
    }

    /// Output dimensionality.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.components.rows()
    }

    /// Projects one vector into the principal subspace.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    #[must_use]
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.input_dim(), "Pca::transform: bad input size");
        (0..self.output_dim())
            .map(|j| {
                self.components
                    .row(j)
                    .iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(c, (xi, m))| c * (xi - m))
                    .sum()
            })
            .collect()
    }

    /// Projects every row of `data`.
    #[must_use]
    pub fn transform_batch(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), self.output_dim());
        for i in 0..data.rows() {
            out.row_mut(i).copy_from_slice(&self.transform(data.row(i)));
        }
        out
    }

    /// Reconstructs an input-space vector from its projection (the
    /// minimum-error linear reconstruction).
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // components and output walked in lockstep
    pub fn inverse_transform(&self, y: &[f32]) -> Vec<f32> {
        assert_eq!(
            y.len(),
            self.output_dim(),
            "Pca::inverse_transform: bad size"
        );
        let d = self.input_dim();
        let mut x = self.mean.clone();
        for j in 0..self.output_dim() {
            let c = self.components.row(j);
            for a in 0..d {
                x[a] += y[j] * c[a];
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dist_sq;
    use rand::Rng;
    use reach_sim::rng::seeded;

    /// Data with variance concentrated in two known directions.
    fn planar_data() -> Matrix {
        let mut rng = seeded(17);
        let mut data = Vec::new();
        for _ in 0..400 {
            let a: f32 = rng.gen_range(-10.0..10.0);
            let b: f32 = rng.gen_range(-3.0..3.0);
            let mut noise = || rng.gen_range(-0.01f32..0.01);
            // Embed the 2-D signal into 6 dimensions.
            let mut row = vec![a, b, 0.5 * a, -0.5 * b, 0.0, 0.0];
            for v in &mut row {
                *v += noise();
            }
            data.append(&mut row);
        }
        Matrix::from_vec(400, 6, data)
    }

    #[test]
    fn captures_dominant_subspace() {
        let data = planar_data();
        let pca = Pca::fit(&data, 2, 40);
        // Reconstruction from 2 components recovers the 6-D points almost
        // exactly (all variance lives in a 2-D subspace).
        let mut worst = 0.0f32;
        for i in (0..400).step_by(17) {
            let x = data.row(i);
            let rec = pca.inverse_transform(&pca.transform(x));
            worst = worst.max(dist_sq(x, &rec));
        }
        assert!(worst < 0.01, "worst reconstruction error {worst}");
    }

    #[test]
    fn components_are_orthonormal() {
        let data = planar_data();
        let pca = Pca::fit(&data, 3, 40);
        for a in 0..3 {
            for b in 0..3 {
                let dot: f32 = pca
                    .components
                    .row(a)
                    .iter()
                    .zip(pca.components.row(b))
                    .map(|(x, y)| x * y)
                    .sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-3, "({a},{b}) dot {dot}");
            }
        }
    }

    #[test]
    fn projection_preserves_neighbourhoods() {
        // The property CBIR relies on: nearest neighbours in input space
        // stay nearest after PCA when variance is concentrated.
        let data = planar_data();
        let pca = Pca::fit(&data, 2, 40);
        let proj = pca.transform_batch(&data);
        for qi in [0usize, 50, 100] {
            let nn_input = (0..data.rows())
                .filter(|&i| i != qi)
                .min_by(|&a, &b| {
                    dist_sq(data.row(qi), data.row(a))
                        .partial_cmp(&dist_sq(data.row(qi), data.row(b)))
                        .unwrap()
                })
                .unwrap();
            let nn_proj = (0..proj.rows())
                .filter(|&i| i != qi)
                .min_by(|&a, &b| {
                    dist_sq(proj.row(qi), proj.row(a))
                        .partial_cmp(&dist_sq(proj.row(qi), proj.row(b)))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(nn_input, nn_proj, "query {qi}: neighbour changed");
        }
    }

    #[test]
    fn transform_is_centered() {
        let data = planar_data();
        let pca = Pca::fit(&data, 2, 30);
        // The projection of the mean itself is ~0.
        let z = pca.transform(&pca.mean.clone());
        assert!(z.iter().all(|v| v.abs() < 1e-5), "{z:?}");
    }

    #[test]
    fn deterministic() {
        let data = planar_data();
        let a = Pca::fit(&data, 2, 25);
        let b = Pca::fit(&data, 2, 25);
        assert_eq!(a.components.as_slice(), b.components.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_too_large_rejected() {
        let data = planar_data();
        let _ = Pca::fit(&data, 7, 5);
    }
}
