//! Product quantization — the compression baseline the paper argues
//! *against*.
//!
//! Section IV-A: "a large body of work focuses on compression methods such
//! as binary codes and product quantization which reduces the dimensionality
//! of feature vectors, leading to orders of magnitude reduction in data
//! visited. However, these methods significantly penalize the recall
//! accuracy of the CBIR system." ReACH's pitch is hierarchical near-data
//! acceleration *instead of* lossy compression. To make that comparison
//! executable, this module implements a standard IVF-free product quantizer
//! (per-subspace k-means codebooks, asymmetric-distance search), and the
//! test suite demonstrates the recall penalty on the same datasets the
//! exact pipeline handles losslessly.

use crate::kmeans::kmeans;
use crate::linalg::Matrix;
use crate::topk::top_k;
use rand::Rng;

/// A trained product quantizer.
///
/// # Example
///
/// ```
/// use reach_cbir::linalg::Matrix;
/// use reach_cbir::ProductQuantizer;
///
/// let data = Matrix::from_vec(64, 8, (0..64 * 8).map(|i| (i % 9) as f32).collect());
/// let pq = ProductQuantizer::train(&data, 4, 8, &mut reach_sim::rng::seeded(2));
/// let code = pq.encode(data.row(0));
/// assert_eq!(code.len(), 4); // 32 B vector -> 4 B code
/// ```
#[derive(Clone, Debug)]
pub struct ProductQuantizer {
    /// Sub-vector length (input dim / subspaces).
    sub_dim: usize,
    /// One codebook per subspace, each `centroids x sub_dim`.
    codebooks: Vec<Matrix>,
}

impl ProductQuantizer {
    /// Trains a quantizer with `subspaces` sub-quantizers of `centroids`
    /// codewords each (classic PQ uses 8 subspaces x 256 codewords for
    /// 8 bytes per vector).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionality is not divisible by `subspaces`, or if
    /// `centroids` exceeds the training-set size or 256 (codes are `u8`).
    #[must_use]
    pub fn train(data: &Matrix, subspaces: usize, centroids: usize, rng: &mut impl Rng) -> Self {
        let d = data.cols();
        assert!(
            subspaces > 0 && d.is_multiple_of(subspaces),
            "ProductQuantizer: {d} dims not divisible into {subspaces} subspaces"
        );
        assert!(
            (1..=256).contains(&centroids) && centroids <= data.rows(),
            "ProductQuantizer: centroids {centroids} out of range"
        );
        let sub_dim = d / subspaces;
        let codebooks = (0..subspaces)
            .map(|s| {
                // Slice out the subspace columns.
                let mut sub = Matrix::zeros(data.rows(), sub_dim);
                for i in 0..data.rows() {
                    sub.row_mut(i)
                        .copy_from_slice(&data.row(i)[s * sub_dim..(s + 1) * sub_dim]);
                }
                kmeans(&sub, centroids, 20, rng).centroids
            })
            .collect();
        ProductQuantizer { sub_dim, codebooks }
    }

    /// Number of subspaces.
    #[must_use]
    pub fn subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Bytes per encoded vector.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.codebooks.len()
    }

    /// Encodes one vector into its per-subspace codeword indices.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    #[must_use]
    pub fn encode(&self, x: &[f32]) -> Vec<u8> {
        assert_eq!(
            x.len(),
            self.sub_dim * self.codebooks.len(),
            "ProductQuantizer::encode: bad input size"
        );
        self.codebooks
            .iter()
            .enumerate()
            .map(|(s, book)| {
                let sub = &x[s * self.sub_dim..(s + 1) * self.sub_dim];
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for c in 0..book.rows() {
                    let d = crate::linalg::dist_sq(sub, book.row(c));
                    if d < best_d {
                        best = c;
                        best_d = d;
                    }
                }
                best as u8
            })
            .collect()
    }

    /// Encodes every row of `data`.
    #[must_use]
    pub fn encode_batch(&self, data: &Matrix) -> Vec<Vec<u8>> {
        (0..data.rows()).map(|i| self.encode(data.row(i))).collect()
    }

    /// Decodes a code back to the (lossy) reconstruction.
    #[must_use]
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.sub_dim * self.codebooks.len());
        for (s, book) in self.codebooks.iter().enumerate() {
            x.extend_from_slice(book.row(usize::from(code[s])));
        }
        x
    }

    /// Builds the asymmetric-distance lookup table for one query: entry
    /// `[s][c]` is the squared distance from the query's sub-vector `s` to
    /// codeword `c`.
    #[must_use]
    pub fn distance_table(&self, query: &[f32]) -> Vec<Vec<f32>> {
        self.codebooks
            .iter()
            .enumerate()
            .map(|(s, book)| {
                let sub = &query[s * self.sub_dim..(s + 1) * self.sub_dim];
                (0..book.rows())
                    .map(|c| crate::linalg::dist_sq(sub, book.row(c)))
                    .collect()
            })
            .collect()
    }

    /// [`distance_table`](Self::distance_table) with the codeword norms
    /// served from `ctx`'s cross-batch cache: each entry is the
    /// decomposed `||q_s||^2 + ||c||^2 - 2<q_s, c>` with `||c||^2`
    /// computed once per codebook — across every query of every batch —
    /// instead of once per query. The decomposed form rounds differently
    /// from the direct subtraction (within normal `f32` tolerance); it is
    /// deterministic and identical for every query that reuses the cache.
    #[must_use]
    pub fn distance_table_cached(
        &self,
        ctx: &crate::cache::QueryContext,
        query: &[f32],
    ) -> Vec<Vec<f32>> {
        self.codebooks
            .iter()
            .enumerate()
            .map(|(s, book)| {
                let sub = &query[s * self.sub_dim..(s + 1) * self.sub_dim];
                let q_norm = crate::linalg::norm_sq(sub);
                let c_norms = ctx.row_norms(book);
                (0..book.rows())
                    .map(|c| q_norm + c_norms[c] - 2.0 * crate::linalg::dot8(sub, book.row(c)))
                    .collect()
            })
            .collect()
    }

    /// Asymmetric distance of a code against a precomputed table.
    #[must_use]
    pub fn adc_distance(table: &[Vec<f32>], code: &[u8]) -> f32 {
        table
            .iter()
            .zip(code)
            .map(|(row, &c)| row[usize::from(c)])
            .sum()
    }

    /// Exhaustive ADC search: the K nearest codes to `query`.
    #[must_use]
    pub fn search(&self, codes: &[Vec<u8>], query: &[f32], k: usize) -> Vec<usize> {
        Self::adc_top_k(&self.distance_table(query), codes, k)
    }

    /// [`search`](Self::search) with the distance table built through
    /// `ctx`'s codeword-norm cache (see
    /// [`distance_table_cached`](Self::distance_table_cached)).
    #[must_use]
    pub fn search_cached(
        &self,
        ctx: &crate::cache::QueryContext,
        codes: &[Vec<u8>],
        query: &[f32],
        k: usize,
    ) -> Vec<usize> {
        Self::adc_top_k(&self.distance_table_cached(ctx, query), codes, k)
    }

    fn adc_top_k(table: &[Vec<f32>], codes: &[Vec<u8>], k: usize) -> Vec<usize> {
        top_k(
            codes
                .iter()
                .enumerate()
                .map(|(i, code)| (Self::adc_distance(table, code), i)),
            k,
        )
        .into_iter()
        .map(|(_, i)| i)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{recall, Dataset};
    use crate::ivf::IvfIndex;
    use reach_sim::rng::seeded;

    fn setup() -> (Dataset, Matrix, Vec<Vec<usize>>) {
        let mut rng = seeded(41);
        let ds = Dataset::gaussian_mixture(4_000, 32, 40, 0.8, &mut rng);
        let (queries, _) = ds.queries(24, 0.2, &mut rng);
        let truth = ds.ground_truth(&queries, 10);
        (ds, queries, truth)
    }

    #[test]
    fn roundtrip_reduces_but_bounds_error() {
        let (ds, _, _) = setup();
        let mut rng = seeded(42);
        let pq = ProductQuantizer::train(&ds.points, 8, 64, &mut rng);
        assert_eq!(pq.code_bytes(), 8); // 128 B -> 8 B: 16x compression
        let x = ds.points.row(0);
        let rec = pq.decode(&pq.encode(x));
        let err = crate::linalg::dist_sq(x, &rec);
        let norm = crate::linalg::norm_sq(x);
        assert!(err < norm, "reconstruction worse than zero vector");
        assert!(err > 0.0, "lossy coding cannot be exact on continuous data");
    }

    #[test]
    fn adc_equals_decoded_distance() {
        let (ds, queries, _) = setup();
        let mut rng = seeded(43);
        let pq = ProductQuantizer::train(&ds.points, 4, 32, &mut rng);
        let code = pq.encode(ds.points.row(7));
        let table = pq.distance_table(queries.row(0));
        let adc = ProductQuantizer::adc_distance(&table, &code);
        let direct = crate::linalg::dist_sq(queries.row(0), &pq.decode(&code));
        assert!(
            (adc - direct).abs() < 1e-2 * direct.max(1.0),
            "{adc} vs {direct}"
        );
    }

    #[test]
    fn pq_recall_is_penalized_vs_exact_rerank() {
        // The paper's argument, executed: on the same data, the exact
        // IVF+rerank pipeline beats aggressive PQ compression on recall.
        let (ds, queries, truth) = setup();
        let mut rng = seeded(44);

        let pq = ProductQuantizer::train(&ds.points, 4, 16, &mut rng); // 32x compression
        let codes = pq.encode_batch(&ds.points);
        let pq_results: Vec<Vec<usize>> = (0..queries.rows())
            .map(|qi| pq.search(&codes, queries.row(qi), 10))
            .collect();
        let pq_recall = recall(&pq_results, &truth, 10).recall_at_k;

        let index = IvfIndex::build(&ds.points, 40, &mut rng);
        let exact = index.search(&ds.points, &queries, 8, 10, None);
        let exact_recall = recall(&exact, &truth, 10).recall_at_k;

        assert!(
            exact_recall > pq_recall + 0.1,
            "exact {exact_recall:.3} should clearly beat 32x-PQ {pq_recall:.3}"
        );
        assert!(
            exact_recall > 0.9,
            "exact pipeline recall {exact_recall:.3}"
        );
    }

    #[test]
    fn more_codewords_improve_pq_recall() {
        let (ds, queries, truth) = setup();
        let r = |centroids: usize| {
            let mut rng = seeded(45);
            let pq = ProductQuantizer::train(&ds.points, 4, centroids, &mut rng);
            let codes = pq.encode_batch(&ds.points);
            let res: Vec<Vec<usize>> = (0..queries.rows())
                .map(|qi| pq.search(&codes, queries.row(qi), 10))
                .collect();
            recall(&res, &truth, 10).recall_at_k
        };
        let coarse = r(4);
        let fine = r(64);
        assert!(
            fine > coarse,
            "recall should grow with codebook size: {coarse} -> {fine}"
        );
    }

    #[test]
    fn cached_adc_search_matches_uncached_ranking() {
        let (ds, queries, _) = setup();
        let mut rng = seeded(46);
        let pq = ProductQuantizer::train(&ds.points, 4, 32, &mut rng);
        let codes = pq.encode_batch(&ds.points);
        let ctx = crate::cache::QueryContext::new();
        for qi in 0..queries.rows() {
            let plain = pq.search(&codes, queries.row(qi), 10);
            let cached = pq.search_cached(&ctx, &codes, queries.row(qi), 10);
            // The decomposed table rounds differently from the direct
            // subtraction, so allow rank swaps only between candidates whose
            // direct-form ADC distances are within f32 noise of each other.
            let table = pq.distance_table(queries.row(qi));
            for (a, b) in plain.iter().zip(&cached) {
                if a != b {
                    let da = ProductQuantizer::adc_distance(&table, &codes[*a]);
                    let db = ProductQuantizer::adc_distance(&table, &codes[*b]);
                    assert!(
                        (da - db).abs() <= 1e-3 * da.abs().max(1.0),
                        "query {qi}: {a} (d={da}) vs {b} (d={db})"
                    );
                }
            }
        }
        // And the cache actually gets used: one entry per codebook.
        assert_eq!(ctx.cached_matrices(), pq.subspaces());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_subspaces_rejected() {
        let data = Matrix::zeros(10, 30);
        let _ = ProductQuantizer::train(&data, 4, 4, &mut seeded(0));
    }
}
