//! Partial selection: the top-K smallest distances.
//!
//! Both short-list retrieval and rerank end in a partial sort ("a partial
//! sorting on the computed distances is required to produce the K-nearest
//! data points"). The implementation keeps a bounded max-heap, so selecting
//! K from N costs `O(N log K)` instead of a full sort's `O(N log N)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(distance, index)` candidate with a total order suitable for heaps:
/// NaN distances are rejected at construction.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Candidate {
    dist: f32,
    index: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: distance first, index as a deterministic tie-break.
        self.dist
            .partial_cmp(&other.dist)
            .expect("NaN rejected at insert")
            .then(self.index.cmp(&other.index))
    }
}

/// Selects the `k` smallest `(distance, index)` pairs, returned in
/// ascending distance order with index tie-breaks. `k` larger than the
/// input returns everything.
///
/// # Panics
///
/// Panics if any distance is NaN (a poisoned distance would silently
/// corrupt retrieval results).
///
/// # Example
///
/// ```
/// let dists = [3.0_f32, 1.0, 2.0, 0.5];
/// let top = reach_cbir::top_k(dists.iter().copied().enumerate().map(|(i, d)| (d, i)), 2);
/// assert_eq!(top, vec![(0.5, 3), (1.0, 1)]);
/// ```
#[must_use]
pub fn top_k(items: impl IntoIterator<Item = (f32, usize)>, k: usize) -> Vec<(f32, usize)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
    // Cache the current k-th best (the heap root) so a candidate that
    // cannot enter the top-K is rejected on one comparison, without even
    // peeking the heap. On realistic distance streams most candidates lose,
    // so this is the common path.
    let mut worst = Candidate {
        dist: f32::INFINITY,
        index: usize::MAX,
    };
    for (dist, index) in items {
        assert!(!dist.is_nan(), "top_k: NaN distance for index {index}");
        let c = Candidate { dist, index };
        if heap.len() < k {
            heap.push(c);
            if heap.len() == k {
                worst = *heap.peek().expect("non-empty heap");
            }
        } else if c < worst {
            heap.pop();
            heap.push(c);
            worst = *heap.peek().expect("non-empty heap");
        }
    }
    let mut out: Vec<Candidate> = heap.into_vec();
    out.sort_unstable();
    out.into_iter().map(|c| (c.dist, c.index)).collect()
}

/// Merges per-shard partial top-K lists into the global top-K.
///
/// Each shard list must carry **global** indices and hold that shard's own
/// `k` best candidates (a per-shard [`top_k`] output). Because every global
/// winner is, by definition, among its own shard's `k` best, re-selecting
/// over the chained partials recovers exactly the unsharded answer — same
/// distances, same index tie-breaks, same order. Empty shards contribute
/// nothing; shards smaller than `k` simply contribute everything they have.
///
/// # Panics
///
/// Panics if any distance is NaN (inherited from [`top_k`]).
///
/// # Example
///
/// ```
/// use reach_cbir::{merge_top_k, top_k};
/// let shard_a = top_k([(3.0, 0), (1.0, 2)], 2);
/// let shard_b = top_k([(2.0, 1), (0.5, 3)], 2);
/// assert_eq!(merge_top_k(&[shard_a, shard_b], 2), vec![(0.5, 3), (1.0, 2)]);
/// ```
#[must_use]
pub fn merge_top_k(shards: &[Vec<(f32, usize)>], k: usize) -> Vec<(f32, usize)> {
    top_k(shards.iter().flatten().copied(), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_smallest_in_order() {
        let d = [5.0, 1.0, 4.0, 2.0, 3.0];
        let got = top_k(d.iter().copied().enumerate().map(|(i, x)| (x, i)), 3);
        assert_eq!(got, vec![(1.0, 1), (2.0, 3), (3.0, 4)]);
    }

    #[test]
    fn k_zero_and_k_big() {
        let d = [(1.0, 0), (2.0, 1)];
        assert!(top_k(d, 0).is_empty());
        let all = top_k(d, 10);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn empty_stream_yields_empty_result() {
        // An empty candidate list (e.g. a rerank over zero survivors)
        // must come back empty, not panic.
        assert!(top_k(std::iter::empty(), 5).is_empty());
        assert!(top_k(std::iter::empty(), 0).is_empty());
    }

    #[test]
    fn ties_break_by_index() {
        let d = [(1.0, 2), (1.0, 0), (1.0, 1)];
        assert_eq!(top_k(d, 2), vec![(1.0, 0), (1.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = top_k([(f32::NAN, 0)], 1);
    }

    #[test]
    fn merge_handles_empty_shards_and_oversized_k() {
        // Two empty shards, one tiny shard smaller than k.
        let shards = vec![Vec::new(), vec![(2.0, 5), (1.0, 7)], Vec::new()];
        assert_eq!(merge_top_k(&shards, 10), vec![(1.0, 7), (2.0, 5)]);
        assert!(merge_top_k(&[], 10).is_empty());
        assert!(merge_top_k(&shards, 0).is_empty());
    }

    proptest! {
        /// top_k == sorted prefix, for every input and k.
        #[test]
        fn matches_full_sort(
            dists in proptest::collection::vec(-1e6f32..1e6, 0..200),
            k in 0usize..32,
        ) {
            let items: Vec<(f32, usize)> =
                dists.iter().copied().enumerate().map(|(i, d)| (d, i)).collect();
            let got = top_k(items.clone(), k);
            let mut want = items;
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        /// The scatter-gather contract: partition the candidates across N
        /// shards (round-robin, preserving global indices), select k per
        /// shard, merge — the result equals the unsharded top_k exactly.
        /// Small inputs leave some shards empty, and k regularly exceeds a
        /// shard's size, so both edge cases are inside the search space.
        #[test]
        fn merged_shard_topk_equals_global_topk(
            dists in proptest::collection::vec(-1e6f32..1e6, 0..200),
            shards in 1usize..9,
            k in 0usize..32,
        ) {
            let items: Vec<(f32, usize)> =
                dists.iter().copied().enumerate().map(|(i, d)| (d, i)).collect();
            let mut parts: Vec<Vec<(f32, usize)>> = vec![Vec::new(); shards];
            for (i, item) in items.iter().enumerate() {
                parts[i % shards].push(*item);
            }
            let partials: Vec<Vec<(f32, usize)>> =
                parts.into_iter().map(|p| top_k(p, k)).collect();
            prop_assert_eq!(merge_top_k(&partials, k), top_k(items, k));
        }

        /// Duplicate distances everywhere: ties must break by global index
        /// identically on the sharded and unsharded paths.
        #[test]
        fn merge_breaks_ties_identically_to_global(
            n in 0usize..120,
            shards in 1usize..9,
            k in 0usize..32,
            quantum in 1u32..4,
        ) {
            // Coarsely quantized distances force heavy tie pressure.
            let items: Vec<(f32, usize)> = (0..n)
                .map(|i| (((i * 7919) % quantum as usize) as f32, i))
                .collect();
            let mut parts: Vec<Vec<(f32, usize)>> = vec![Vec::new(); shards];
            for (i, item) in items.iter().enumerate() {
                parts[i % shards].push(*item);
            }
            let partials: Vec<Vec<(f32, usize)>> =
                parts.into_iter().map(|p| top_k(p, k)).collect();
            prop_assert_eq!(merge_top_k(&partials, k), top_k(items, k));
        }
    }
}
