//! Property tests over the simulation primitives.

use proptest::prelude::*;
use reach_sim::{Bandwidth, EventQueue, Frequency, MultiResource, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue pops in exactly (time, insertion) order — equivalent
    /// to a stable sort of the input by timestamp.
    #[test]
    fn event_queue_is_a_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_ps(), i)).collect();
        let mut want: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        want.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        prop_assert_eq!(got, want);
    }

    /// Popping never goes back in time.
    #[test]
    fn event_queue_time_is_monotone(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_ps(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(q.now(), last);
    }

    /// cycles(a) + cycles(b) differs from cycles(a+b) by at most one
    /// picosecond per call (ceil rounding), never less.
    #[test]
    fn frequency_cycles_superadditive(mhz in 1u64..4_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let f = Frequency::from_mhz(mhz);
        let split = f.cycles(a) + f.cycles(b);
        let joint = f.cycles(a + b);
        prop_assert!(split >= joint, "split {split:?} < joint {joint:?}");
        prop_assert!(split.as_ps() - joint.as_ps() <= 2, "rounding drift too large");
    }

    /// Transfer time scales monotonically with bytes and inversely with rate.
    #[test]
    fn bandwidth_monotonicity(bytes in 1u64..(1 << 30), gbps in 1u64..100) {
        let slow = Bandwidth::from_gbps(gbps);
        let fast = Bandwidth::from_gbps(gbps * 2);
        prop_assert!(slow.transfer_time(bytes) >= fast.transfer_time(bytes));
        prop_assert!(slow.transfer_time(bytes + 1) >= slow.transfer_time(bytes));
    }

    /// A k-server resource is work-conserving: total busy time equals the
    /// sum of service demands, and the makespan is at least demand/k.
    #[test]
    fn multi_resource_work_conservation(
        k in 1usize..8,
        services in proptest::collection::vec(1u64..10_000, 1..64),
    ) {
        let mut m = MultiResource::new(k);
        let total: u64 = services.iter().sum();
        let mut last = SimTime::ZERO;
        for &s in &services {
            let r = m.reserve(SimTime::ZERO, SimDuration::from_ps(s));
            last = last.max(r.ready);
        }
        prop_assert_eq!(m.busy_time(), SimDuration::from_ps(total));
        let lower = total.div_ceil(k as u64);
        prop_assert!(last.as_ps() >= lower, "makespan beats the capacity bound");
        let longest = *services.iter().max().expect("non-empty");
        prop_assert!(last.as_ps() <= total.max(longest), "worse than serial");
    }
}
