//! Property tests over the simulation primitives.

use proptest::prelude::*;
use reach_sim::{Bandwidth, EventQueue, Frequency, MultiResource, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-calendar reference implementation of the event-queue contract: a
/// binary heap ordered by `(time, seq)` with `now` advancing on pop. The
/// calendar-backed [`EventQueue`] must be behaviorally indistinguishable
/// from it.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    next_seq: u64,
    now: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    fn push(&mut self, at: u64, payload: u32) {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((at, _, payload)) = self.heap.pop()?;
        self.now = at;
        Some((at, payload))
    }

    fn pop_batch(&mut self, out: &mut Vec<u32>) -> Option<u64> {
        out.clear();
        let (at, payload) = self.pop()?;
        out.push(payload);
        while let Some(&Reverse((t, _, _))) = self.heap.peek() {
            if t != at {
                break;
            }
            out.push(self.heap.pop().expect("peeked").0 .2);
        }
        Some(at)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue pops in exactly (time, insertion) order — equivalent
    /// to a stable sort of the input by timestamp.
    #[test]
    fn event_queue_is_a_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_ps(), i)).collect();
        let mut want: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        want.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        prop_assert_eq!(got, want);
    }

    /// The calendar-backed queue and the binary-heap reference produce
    /// identical pop sequences (and identical `now`) over randomized
    /// push/pop/`push_in`/batch-pop interleavings, including same-instant
    /// ties — the ordering contract the simulator's determinism rests on.
    #[test]
    fn calendar_matches_binary_heap_reference(
        ops in proptest::collection::vec((0u8..8, 0u64..50_000), 1..400),
    ) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut next_payload = 0u32;
        let mut cal_batch = Vec::new();
        let mut heap_batch = Vec::new();
        for &(kind, delta) in &ops {
            match kind {
                // Push at an absolute future time; delta % 4 == 0 forces
                // frequent same-instant collisions via coarse quantization.
                0..=2 => {
                    let at = heap.now + if delta % 4 == 0 { 0 } else { delta / 4 };
                    cal.push(SimTime::from_ps(at), next_payload);
                    heap.push(at, next_payload);
                    next_payload += 1;
                }
                // Relative scheduling, far-future included to exercise the
                // calendar's overflow heap and day jumps.
                3..=4 => {
                    let d = delta * 1_000_003; // up to ~50 us out
                    cal.push_in(SimDuration::from_ps(d), next_payload);
                    heap.push(heap.now + d, next_payload);
                    next_payload += 1;
                }
                5..=6 => {
                    let got = cal.pop().map(|(t, e)| (t.as_ps(), e));
                    prop_assert_eq!(got, heap.pop());
                }
                _ => {
                    let t_cal = cal.pop_batch_into(&mut cal_batch).map(SimTime::as_ps);
                    let t_heap = heap.pop_batch(&mut heap_batch);
                    prop_assert_eq!(t_cal, t_heap);
                    prop_assert_eq!(&cal_batch, &heap_batch);
                }
            }
            prop_assert_eq!(cal.now().as_ps(), heap.now);
            prop_assert_eq!(cal.len(), heap.heap.len());
        }
        // Drain whatever is left and compare the tails.
        loop {
            let got = cal.pop().map(|(t, e)| (t.as_ps(), e));
            let want = heap.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// Popping never goes back in time.
    #[test]
    fn event_queue_time_is_monotone(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_ps(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(q.now(), last);
    }

    /// cycles(a) + cycles(b) differs from cycles(a+b) by at most one
    /// picosecond per call (ceil rounding), never less.
    #[test]
    fn frequency_cycles_superadditive(mhz in 1u64..4_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let f = Frequency::from_mhz(mhz);
        let split = f.cycles(a) + f.cycles(b);
        let joint = f.cycles(a + b);
        prop_assert!(split >= joint, "split {split:?} < joint {joint:?}");
        prop_assert!(split.as_ps() - joint.as_ps() <= 2, "rounding drift too large");
    }

    /// Transfer time scales monotonically with bytes and inversely with rate.
    #[test]
    fn bandwidth_monotonicity(bytes in 1u64..(1 << 30), gbps in 1u64..100) {
        let slow = Bandwidth::from_gbps(gbps);
        let fast = Bandwidth::from_gbps(gbps * 2);
        prop_assert!(slow.transfer_time(bytes) >= fast.transfer_time(bytes));
        prop_assert!(slow.transfer_time(bytes + 1) >= slow.transfer_time(bytes));
    }

    /// A k-server resource is work-conserving: total busy time equals the
    /// sum of service demands, and the makespan is at least demand/k.
    #[test]
    fn multi_resource_work_conservation(
        k in 1usize..8,
        services in proptest::collection::vec(1u64..10_000, 1..64),
    ) {
        let mut m = MultiResource::new(k);
        let total: u64 = services.iter().sum();
        let mut last = SimTime::ZERO;
        for &s in &services {
            let r = m.reserve(SimTime::ZERO, SimDuration::from_ps(s));
            last = last.max(r.ready);
        }
        prop_assert_eq!(m.busy_time(), SimDuration::from_ps(total));
        let lower = total.div_ceil(k as u64);
        prop_assert!(last.as_ps() >= lower, "makespan beats the capacity bound");
        let longest = *services.iter().max().expect("non-empty");
        prop_assert!(last.as_ps() <= total.max(longest), "worse than serial");
    }
}
