//! Statistics primitives used to assemble the experiment reports.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use reach_sim::Counter;
/// let mut hits = Counter::new("llc_hits");
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a named, zeroed counter.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Running summary (count / sum / min / max / mean) of a stream of samples.
///
/// # Example
///
/// ```
/// use reach_sim::Accumulator;
/// let mut lat = Accumulator::new("read_latency_ns");
/// for v in [10.0, 20.0, 30.0] { lat.record(v); }
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.min(), Some(10.0));
/// assert_eq!(lat.max(), Some(30.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    name: String,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates a named, empty accumulator.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Accumulator {
            name: name.into(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN — a NaN sample silently poisons every later
    /// aggregate, so it is rejected at the door.
    pub fn record(&mut self, v: f64) {
        assert!(
            !v.is_nan(),
            "Accumulator::record: NaN sample in {}",
            self.name
        );
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The accumulator's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.3} min={:.3} max={:.3}",
            self.name,
            self.count,
            self.mean(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))`; bucket 0 also holds zero.
///
/// # Example
///
/// ```
/// use reach_sim::Histogram;
/// let mut h = Histogram::new("queue_delay_ps");
/// h.record(5);   // bucket 2: [4, 8)
/// h.record(6);
/// h.record(100); // bucket 6: [64, 128)
/// assert_eq!(h.bucket_count(2), 2);
/// assert_eq!(h.bucket_count(6), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    name: String,
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a named, empty histogram.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Number of samples in bucket `i` (`[2^i, 2^(i+1))`).
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the p-th percentile (the top of the bucket holding
    /// that rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    #[must_use]
    pub fn percentile_bound(&self, p: u8) -> u64 {
        assert!(p <= 100, "percentile must be in [0, 100]");
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(p))
            .div_ceil(100)
            .max(1);
        let mut seen: u128 = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += u128::from(c);
            if seen >= rank {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// The histogram's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} p50<={} p99<={}",
            self.name,
            self.count,
            self.mean(),
            self.percentile_bound(50),
            self.percentile_bound(99)
        )
    }
}

/// Sub-buckets per octave in a [`LatencyHistogram`] (as a power of two).
const LAT_SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8): each bucket spans 12.5% of its octave.
const LAT_SUBS: usize = 1 << LAT_SUB_BITS;
/// Values below `LAT_SUBS` get one exact bucket each; octaves 3..=63 get
/// `LAT_SUBS` buckets each: 8 + 61 * 8 = 496.
const LAT_BUCKETS: usize = LAT_SUBS + (64 - LAT_SUB_BITS as usize) * LAT_SUBS;

/// A log-bucketed latency histogram with deterministic quantiles.
///
/// Unlike [`Histogram`] (one bucket per octave, percentiles in whole
/// percent), this splits every octave into 8 sub-buckets (12.5% relative
/// resolution) and reports quantiles per mille, so p99.9 is expressible.
/// Everything is integer arithmetic over fixed bucket boundaries: recording
/// order never matters, [`LatencyHistogram::merge`] is a plain bucket-wise
/// sum, and equal contents always produce equal quantiles — which is what
/// lets latency percentiles appear in byte-identical reports at any worker
/// count.
///
/// # Example
///
/// ```
/// use reach_sim::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 { h.record(v); }
/// assert_eq!(h.count(), 1000);
/// // Quantile bounds are bucket tops: within 12.5% above the exact rank.
/// let p50 = h.quantile_per_mille(500);
/// assert!((500..=575).contains(&p50), "p50 bound {p50}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LAT_BUCKETS],
    count: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LAT_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index holding `v`.
    fn index(v: u64) -> usize {
        if v < LAT_SUBS as u64 {
            return v as usize;
        }
        let e = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (e - LAT_SUB_BITS as usize)) as usize) & (LAT_SUBS - 1);
        (e - (LAT_SUB_BITS as usize - 1)) * LAT_SUBS + sub
    }

    /// The largest value bucket `i` can hold (inclusive), saturating at
    /// `u64::MAX` for the top octave.
    fn upper_bound(i: usize) -> u64 {
        if i < LAT_SUBS {
            return i as u64;
        }
        let e = i / LAT_SUBS + (LAT_SUB_BITS as usize - 1);
        let sub = (i % LAT_SUBS) as u128;
        let low = (1u128 << e) + sub * (1u128 << (e - LAT_SUB_BITS as usize));
        let high = low + (1u128 << (e - LAT_SUB_BITS as usize)) - 1;
        u64::try_from(high).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Folds another histogram into this one. Bucket-wise addition, so the
    /// merge order of any partition of the same samples is irrelevant.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-per-mille quantile (the top of the bucket
    /// holding that rank); `p` in `[0, 1000]`, so `p999` is
    /// `quantile_per_mille(999)`. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p > 1000`.
    #[must_use]
    pub fn quantile_per_mille(&self, p: u16) -> u64 {
        assert!(p <= 1000, "quantile must be in [0, 1000] per mille");
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(p))
            .div_ceil(1000)
            .max(1);
        let mut seen: u128 = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += u128::from(c);
            if seen >= rank {
                return Self::upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median upper bound.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_per_mille(500)
    }

    /// 95th-percentile upper bound.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile_per_mille(950)
    }

    /// 99th-percentile upper bound.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile_per_mille(990)
    }

    /// 99.9th-percentile upper bound.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile_per_mille(999)
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50<={} p99<={} p999<={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999()
        )
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth or
/// outstanding-request count over simulated time).
///
/// # Example
///
/// ```
/// use reach_sim::{TimeWeighted, SimTime};
/// let mut depth = TimeWeighted::new("queue_depth");
/// depth.set(SimTime::from_ps(0), 2.0);
/// depth.set(SimTime::from_ps(10), 4.0);
/// assert_eq!(depth.average(SimTime::from_ps(20)), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    name: String,
    last_change: SimTime,
    value: f64,
    weighted_sum: f64,
}

impl TimeWeighted {
    /// Creates a signal that is 0.0 from the origin.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeWeighted {
            name: name.into(),
            last_change: SimTime::ZERO,
            value: 0.0,
            weighted_sum: 0.0,
        }
    }

    /// Sets the signal value at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous change (signals are appended in
    /// time order).
    pub fn set(&mut self, at: SimTime, value: f64) {
        let span = at.since(self.last_change);
        self.weighted_sum += self.value * span.as_ps() as f64;
        self.last_change = at;
        self.value = value;
    }

    /// Adds `delta` to the current value at time `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let next = self.value + delta;
        self.set(at, next);
    }

    /// Current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[ZERO, until]`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last recorded change or is zero.
    #[must_use]
    pub fn average(&self, until: SimTime) -> f64 {
        assert!(until > SimTime::ZERO, "average over empty horizon");
        let tail = until.since(self.last_change);
        let total = self.weighted_sum + self.value * tail.as_ps() as f64;
        total / until.as_ps() as f64
    }

    /// The signal's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Converts a busy duration and active power into joules — the shape every
/// "power × time" energy term in the workspace uses.
#[must_use]
pub fn energy_joules(busy: SimDuration, watts: f64) -> f64 {
    busy.as_secs_f64() * watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("c");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "c=10");
    }

    #[test]
    fn accumulator_summary() {
        let mut a = Accumulator::new("a");
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), None);
        for v in [4.0, 8.0, 0.0] {
            a.record(v);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12.0);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.min(), Some(0.0));
        assert_eq!(a.max(), Some(8.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn accumulator_rejects_nan() {
        Accumulator::new("a").record(f64::NAN);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
        assert_eq!(h.bucket_count(10), 1); // 1024
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 206.0);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let mut h = Histogram::new("h");
        for _ in 0..99 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(1 << 20);
        assert_eq!(h.percentile_bound(50), 15);
        assert_eq!(h.percentile_bound(99), 15);
        assert_eq!(h.percentile_bound(100), (1 << 21) - 1);
        assert_eq!(Histogram::new("empty").percentile_bound(99), 0);
    }

    #[test]
    fn latency_histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        // Below 8 every value has its own bucket, so quantile bounds are
        // exact order statistics.
        assert_eq!(h.quantile_per_mille(0), 0);
        assert_eq!(h.quantile_per_mille(500), 3);
        assert_eq!(h.quantile_per_mille(1000), 7);
    }

    #[test]
    fn latency_histogram_bounds_are_within_one_sub_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        let p = h.p50();
        // 1000 lands in octave [512, 1024), sub-bucket width 64:
        // the bound is at most 12.5% of the octave above the sample.
        assert!((1000..1064).contains(&p), "bound {p}");
    }

    #[test]
    fn latency_histogram_merge_is_bucket_sum() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for (i, v) in [3u64, 77, 12_345, 9, 1 << 40, 0, 500].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v)
            } else {
                b.record(*v)
            }
            whole.record(*v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(ab.count(), 7);
        assert!((ab.mean() - whole.mean()).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_p999_needs_per_mille_resolution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(10);
        }
        h.record(1 << 30);
        assert_eq!(h.p99(), 10);
        assert!(h.p999() == 10);
        assert!(h.quantile_per_mille(1000) >= 1 << 30);
    }

    #[test]
    fn latency_histogram_saturates_at_u64_max() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "per mille")]
    fn latency_histogram_rejects_out_of_range_quantile() {
        let _ = LatencyHistogram::new().quantile_per_mille(1001);
    }

    #[test]
    fn time_weighted_average() {
        let mut s = TimeWeighted::new("q");
        s.set(SimTime::from_ps(0), 1.0);
        s.add(SimTime::from_ps(50), 1.0); // value 2.0 from t=50
                                          // [0, 50): 1.0; [50, 100): 2.0 -> avg 1.5
        assert!((s.average(SimTime::from_ps(100)) - 1.5).abs() < 1e-12);
        assert_eq!(s.current(), 2.0);
    }

    #[test]
    fn energy_joules_is_watt_seconds() {
        let e = energy_joules(SimDuration::from_ms(500), 10.0);
        assert!((e - 5.0).abs() < 1e-12);
    }
}
