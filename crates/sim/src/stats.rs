//! Statistics primitives used to assemble the experiment reports.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use reach_sim::Counter;
/// let mut hits = Counter::new("llc_hits");
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a named, zeroed counter.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Running summary (count / sum / min / max / mean) of a stream of samples.
///
/// # Example
///
/// ```
/// use reach_sim::Accumulator;
/// let mut lat = Accumulator::new("read_latency_ns");
/// for v in [10.0, 20.0, 30.0] { lat.record(v); }
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.min(), Some(10.0));
/// assert_eq!(lat.max(), Some(30.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    name: String,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates a named, empty accumulator.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Accumulator {
            name: name.into(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN — a NaN sample silently poisons every later
    /// aggregate, so it is rejected at the door.
    pub fn record(&mut self, v: f64) {
        assert!(
            !v.is_nan(),
            "Accumulator::record: NaN sample in {}",
            self.name
        );
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The accumulator's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.3} min={:.3} max={:.3}",
            self.name,
            self.count,
            self.mean(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))`; bucket 0 also holds zero.
///
/// # Example
///
/// ```
/// use reach_sim::Histogram;
/// let mut h = Histogram::new("queue_delay_ps");
/// h.record(5);   // bucket 2: [4, 8)
/// h.record(6);
/// h.record(100); // bucket 6: [64, 128)
/// assert_eq!(h.bucket_count(2), 2);
/// assert_eq!(h.bucket_count(6), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    name: String,
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a named, empty histogram.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Number of samples in bucket `i` (`[2^i, 2^(i+1))`).
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the p-th percentile (the top of the bucket holding
    /// that rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    #[must_use]
    pub fn percentile_bound(&self, p: u8) -> u64 {
        assert!(p <= 100, "percentile must be in [0, 100]");
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(p))
            .div_ceil(100)
            .max(1);
        let mut seen: u128 = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += u128::from(c);
            if seen >= rank {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// The histogram's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} p50<={} p99<={}",
            self.name,
            self.count,
            self.mean(),
            self.percentile_bound(50),
            self.percentile_bound(99)
        )
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth or
/// outstanding-request count over simulated time).
///
/// # Example
///
/// ```
/// use reach_sim::{TimeWeighted, SimTime};
/// let mut depth = TimeWeighted::new("queue_depth");
/// depth.set(SimTime::from_ps(0), 2.0);
/// depth.set(SimTime::from_ps(10), 4.0);
/// assert_eq!(depth.average(SimTime::from_ps(20)), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    name: String,
    last_change: SimTime,
    value: f64,
    weighted_sum: f64,
}

impl TimeWeighted {
    /// Creates a signal that is 0.0 from the origin.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeWeighted {
            name: name.into(),
            last_change: SimTime::ZERO,
            value: 0.0,
            weighted_sum: 0.0,
        }
    }

    /// Sets the signal value at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous change (signals are appended in
    /// time order).
    pub fn set(&mut self, at: SimTime, value: f64) {
        let span = at.since(self.last_change);
        self.weighted_sum += self.value * span.as_ps() as f64;
        self.last_change = at;
        self.value = value;
    }

    /// Adds `delta` to the current value at time `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let next = self.value + delta;
        self.set(at, next);
    }

    /// Current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[ZERO, until]`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last recorded change or is zero.
    #[must_use]
    pub fn average(&self, until: SimTime) -> f64 {
        assert!(until > SimTime::ZERO, "average over empty horizon");
        let tail = until.since(self.last_change);
        let total = self.weighted_sum + self.value * tail.as_ps() as f64;
        total / until.as_ps() as f64
    }

    /// The signal's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Converts a busy duration and active power into joules — the shape every
/// "power × time" energy term in the workspace uses.
#[must_use]
pub fn energy_joules(busy: SimDuration, watts: f64) -> f64 {
    busy.as_secs_f64() * watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("c");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "c=10");
    }

    #[test]
    fn accumulator_summary() {
        let mut a = Accumulator::new("a");
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), None);
        for v in [4.0, 8.0, 0.0] {
            a.record(v);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12.0);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.min(), Some(0.0));
        assert_eq!(a.max(), Some(8.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn accumulator_rejects_nan() {
        Accumulator::new("a").record(f64::NAN);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
        assert_eq!(h.bucket_count(10), 1); // 1024
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 206.0);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let mut h = Histogram::new("h");
        for _ in 0..99 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(1 << 20);
        assert_eq!(h.percentile_bound(50), 15);
        assert_eq!(h.percentile_bound(99), 15);
        assert_eq!(h.percentile_bound(100), (1 << 21) - 1);
        assert_eq!(Histogram::new("empty").percentile_bound(99), 0);
    }

    #[test]
    fn time_weighted_average() {
        let mut s = TimeWeighted::new("q");
        s.set(SimTime::from_ps(0), 1.0);
        s.add(SimTime::from_ps(50), 1.0); // value 2.0 from t=50
                                          // [0, 50): 1.0; [50, 100): 2.0 -> avg 1.5
        assert!((s.average(SimTime::from_ps(100)) - 1.5).abs() < 1e-12);
        assert_eq!(s.current(), 2.0);
    }

    #[test]
    fn energy_joules_is_watt_seconds() {
        let e = energy_joules(SimDuration::from_ms(500), 10.0);
        assert!((e - 5.0).abs() < 1e-12);
    }
}
