//! Resource calendars: the contention model underneath every shared
//! component in the hierarchy.
//!
//! A *calendar* tracks when a physical resource (a DRAM bank, a memory
//! channel, a PCIe link, an SSD flash channel, an accelerator) is next free.
//! Requests reserve service windows of `[max(now, free_at), +service)`.
//! Queueing delay, saturation and crossover points in the experiments emerge
//! from these reservations rather than from hand-tuned curves: e.g. the
//! near-memory rerank plateau in Figure 11 appears because eight accelerators
//! reserving windows on one host PCIe calendar push each other's start times
//! out.

use crate::rate::Bandwidth;
use crate::time::{SimDuration, SimTime};

/// The window granted by a reservation: the request occupies the resource
/// during `[start, ready)` and its result is visible at `complete`
/// (`ready` plus any non-occupying latency such as flight time on a link).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reservation {
    /// When the resource actually started serving the request.
    pub start: SimTime,
    /// When the resource becomes free for the next request.
    pub ready: SimTime,
    /// When the requester observes completion (>= `ready`).
    pub complete: SimTime,
}

impl Reservation {
    /// Queueing delay experienced before service began.
    #[must_use]
    pub fn queueing(&self, issued: SimTime) -> SimDuration {
        self.start.since(issued)
    }

    /// Total latency from issue to observed completion.
    #[must_use]
    pub fn latency(&self, issued: SimTime) -> SimDuration {
        self.complete.since(issued)
    }
}

/// A single serially-shared server.
///
/// # Example
///
/// ```
/// use reach_sim::{SerialResource, SimTime, SimDuration};
///
/// let mut bus = SerialResource::new();
/// let a = bus.reserve(SimTime::ZERO, SimDuration::from_ns(10));
/// let b = bus.reserve(SimTime::ZERO, SimDuration::from_ns(10));
/// assert_eq!(a.ready, b.start); // second request queues behind the first
/// ```
#[derive(Clone, Debug, Default)]
pub struct SerialResource {
    free_at: SimTime,
    busy: SimDuration,
    served: u64,
}

impl SerialResource {
    /// Creates an idle resource.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `service` time starting no earlier than `now`.
    pub fn reserve(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let start = now.max(self.free_at);
        let ready = start + service;
        self.free_at = ready;
        self.busy += service;
        self.served += 1;
        Reservation {
            start,
            ready,
            complete: ready,
        }
    }

    /// Reserves `count` back-to-back slots of `service` time, all requested
    /// at the same instant `now`, in one operation.
    ///
    /// Exactly equivalent to calling [`SerialResource::reserve`] `count`
    /// times with the same arguments — same final state, same busy time and
    /// served count — but O(1) instead of O(count). The returned
    /// reservation spans the whole batch: `start` is the first slot's start
    /// and `ready`/`complete` are the last slot's finish. Callers that model
    /// page- or row-granular streams (an SSD read striped over flash pages,
    /// a DRAM stream walking rows) use this to collapse millions of
    /// identical reservations into one.
    pub fn reserve_many(&mut self, now: SimTime, service: SimDuration, count: u64) -> Reservation {
        assert!(count > 0, "SerialResource::reserve_many: empty batch");
        let start = now.max(self.free_at);
        // After the first slot the server is busy past `now`, so every
        // subsequent slot starts exactly where the previous one ended.
        let ready = start + service * count;
        self.free_at = ready;
        self.busy += service * count;
        self.served += count;
        Reservation {
            start,
            ready,
            complete: ready,
        }
    }

    /// The instant the resource next becomes free.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// `true` if the resource is idle at `now`.
    #[must_use]
    pub fn is_free(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total time spent serving requests (for utilization and busy-power
    /// energy accounting).
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of requests served.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Pushes the free instant forward to at least `until` without counting
    /// the gap as busy time (used for e.g. refresh blackouts or ownership
    /// hand-over windows).
    pub fn block_until(&mut self, until: SimTime) {
        self.free_at = self.free_at.max(until);
    }
}

/// `k` identical servers fed from one queue (e.g. the flash channels of an
/// SSD, or a bank group). A request is placed on the earliest-free server;
/// ties resolve to the lowest index, keeping simulations deterministic.
///
/// # Example
///
/// ```
/// use reach_sim::{MultiResource, SimTime, SimDuration};
///
/// let mut chans = MultiResource::new(2);
/// let d = SimDuration::from_ns(8);
/// let a = chans.reserve(SimTime::ZERO, d);
/// let b = chans.reserve(SimTime::ZERO, d);
/// let c = chans.reserve(SimTime::ZERO, d);
/// assert_eq!(a.start, b.start);      // two servers run in parallel
/// assert_eq!(c.start, a.ready);      // third request queues
/// ```
#[derive(Clone, Debug)]
pub struct MultiResource {
    servers: Vec<SerialResource>,
}

impl MultiResource {
    /// Creates `k` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MultiResource requires at least one server");
        MultiResource {
            servers: vec![SerialResource::new(); k],
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn width(&self) -> usize {
        self.servers.len()
    }

    /// Reserves `service` time on the earliest-available server.
    pub fn reserve(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let idx = self.earliest_free();
        self.servers[idx].reserve(now, service)
    }

    /// Reserves on a *specific* server (e.g. a request pinned to the flash
    /// channel holding its data).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn reserve_on(&mut self, idx: usize, now: SimTime, service: SimDuration) -> Reservation {
        self.servers[idx].reserve(now, service)
    }

    /// Batched [`MultiResource::reserve_on`]: `count` back-to-back slots on
    /// server `idx`, all requested at `now`. See
    /// [`SerialResource::reserve_many`] for the equivalence contract.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `count` is zero.
    pub fn reserve_many_on(
        &mut self,
        idx: usize,
        now: SimTime,
        service: SimDuration,
        count: u64,
    ) -> Reservation {
        self.servers[idx].reserve_many(now, service, count)
    }

    /// Index of the server that frees up first (lowest index wins ties).
    #[must_use]
    pub fn earliest_free(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.servers.iter().enumerate().skip(1) {
            if s.free_at() < self.servers[best].free_at() {
                best = i;
            }
        }
        best
    }

    /// Sum of busy time across all servers.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.servers.iter().map(SerialResource::busy_time).sum()
    }

    /// Total requests served across all servers.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.servers.iter().map(SerialResource::served).sum()
    }

    /// The earliest instant at which *any* server is free.
    #[must_use]
    pub fn next_free_at(&self) -> SimTime {
        self.servers[self.earliest_free()].free_at()
    }
}

/// A pipe with finite bandwidth and a fixed propagation latency.
///
/// Serialization time (`bytes / bandwidth`) occupies the pipe; propagation
/// latency delays completion but does not block the next transfer, matching
/// how pipelined links (PCIe, memory channels, NoC hops) behave.
///
/// # Example
///
/// ```
/// use reach_sim::{BandwidthResource, Bandwidth, SimTime, SimDuration};
///
/// let mut link = BandwidthResource::new(Bandwidth::from_gbps(1), SimDuration::from_ns(100));
/// let r = link.transfer(SimTime::ZERO, 1_000); // 1 KB at 1 GB/s = 1 us wire time
/// assert_eq!(r.ready, SimTime::from_ps(1_000_000));
/// assert_eq!(r.complete, SimTime::from_ps(1_100_000)); // + 100 ns flight
/// ```
#[derive(Clone, Debug)]
pub struct BandwidthResource {
    bandwidth: Bandwidth,
    latency: SimDuration,
    pipe: SerialResource,
    bytes: u64,
}

impl BandwidthResource {
    /// Creates an idle link with the given rate and propagation latency.
    #[must_use]
    pub fn new(bandwidth: Bandwidth, latency: SimDuration) -> Self {
        BandwidthResource {
            bandwidth,
            latency,
            pipe: SerialResource::new(),
            bytes: 0,
        }
    }

    /// The configured line rate.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The configured propagation latency.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Transfers `bytes` starting no earlier than `now`.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let wire = self.bandwidth.transfer_time(bytes);
        let mut r = self.pipe.reserve(now, wire);
        r.complete = r.ready + self.latency;
        self.bytes += bytes;
        r
    }

    /// Total bytes moved (for per-link energy accounting).
    #[must_use]
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes
    }

    /// Total time the wire was occupied.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.pipe.busy_time()
    }

    /// The instant the wire next becomes free.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.pipe.free_at()
    }

    /// Utilization over `[SimTime::ZERO, horizon]` as a fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "utilization over empty horizon");
        (self.busy_time().as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_ns(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::from_ps(n * 1_000)
    }

    #[test]
    fn serial_back_to_back_requests_queue() {
        let mut r = SerialResource::new();
        let a = r.reserve(at(0), ns(10));
        let b = r.reserve(at(0), ns(10));
        assert_eq!(a.start, at(0));
        assert_eq!(a.ready, at(10));
        assert_eq!(b.start, at(10));
        assert_eq!(b.ready, at(20));
        assert_eq!(b.queueing(at(0)), ns(10));
        assert_eq!(r.busy_time(), ns(20));
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn reserve_many_matches_repeated_reserve() {
        // Same final state and same batch envelope as n sequential
        // reserves at one instant — including when the server starts busy.
        for initial in [0u64, 7] {
            let mut seq = SerialResource::new();
            let mut bat = SerialResource::new();
            if initial > 0 {
                seq.reserve(at(0), ns(initial));
                bat.reserve(at(0), ns(initial));
            }
            let n = 1000;
            let mut first_start = SimTime::MAX;
            let mut last_ready = at(0);
            for _ in 0..n {
                let r = seq.reserve(at(3), ns(4));
                first_start = first_start.min(r.start);
                last_ready = last_ready.max(r.ready);
            }
            let r = bat.reserve_many(at(3), ns(4), n);
            assert_eq!(r.start, first_start);
            assert_eq!(r.ready, last_ready);
            assert_eq!(bat.free_at(), seq.free_at());
            assert_eq!(bat.busy_time(), seq.busy_time());
            assert_eq!(bat.served(), seq.served());
        }
    }

    #[test]
    fn reserve_many_of_one_is_reserve() {
        let mut a = SerialResource::new();
        let mut b = SerialResource::new();
        let ra = a.reserve(at(5), ns(3));
        let rb = b.reserve_many(at(5), ns(3), 1);
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn reserve_many_zero_rejected() {
        let mut r = SerialResource::new();
        let _ = r.reserve_many(at(0), ns(1), 0);
    }

    #[test]
    fn serial_idle_gap_not_counted_busy() {
        let mut r = SerialResource::new();
        r.reserve(at(0), ns(5));
        r.reserve(at(100), ns(5));
        assert_eq!(r.busy_time(), ns(10));
        assert_eq!(r.free_at(), at(105));
    }

    #[test]
    fn block_until_delays_without_busy() {
        let mut r = SerialResource::new();
        r.block_until(at(50));
        let a = r.reserve(at(0), ns(10));
        assert_eq!(a.start, at(50));
        assert_eq!(r.busy_time(), ns(10));
        assert!(!r.is_free(at(55)));
        assert!(r.is_free(at(60)));
    }

    #[test]
    fn multi_parallelism_then_queueing() {
        let mut m = MultiResource::new(3);
        let d = ns(10);
        let rs: Vec<_> = (0..5).map(|_| m.reserve(at(0), d)).collect();
        assert!(rs[0..3].iter().all(|r| r.start == at(0)));
        assert_eq!(rs[3].start, at(10));
        assert_eq!(rs[4].start, at(10));
        assert_eq!(m.busy_time(), ns(50));
        assert_eq!(m.served(), 5);
    }

    #[test]
    fn multi_ties_resolve_to_lowest_index() {
        let m = MultiResource::new(4);
        assert_eq!(m.earliest_free(), 0);
    }

    #[test]
    fn multi_reserve_on_pins_server() {
        let mut m = MultiResource::new(2);
        let a = m.reserve_on(1, at(0), ns(10));
        let b = m.reserve_on(1, at(0), ns(10));
        assert_eq!(a.ready, b.start);
        // Server 0 is still free.
        assert_eq!(m.earliest_free(), 0);
        assert_eq!(m.next_free_at(), SimTime::ZERO);
    }

    #[test]
    fn bandwidth_latency_does_not_block_pipe() {
        let mut link = BandwidthResource::new(Bandwidth::from_gbps(1), ns(100));
        let a = link.transfer(at(0), 1_000); // 1 us wire
        let b = link.transfer(at(0), 1_000);
        assert_eq!(b.start, a.ready); // queues behind serialization only
        assert_eq!(a.complete, a.ready + ns(100));
        assert_eq!(link.bytes_transferred(), 2_000);
    }

    #[test]
    fn bandwidth_saturation_emerges() {
        // Push 10 MB through a 1 GB/s link: total wire time must be 10 ms.
        let mut link = BandwidthResource::new(Bandwidth::from_gbps(1), SimDuration::ZERO);
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            last = link.transfer(SimTime::ZERO, 1_000_000).complete;
        }
        assert_eq!(last, SimTime::from_ps(10_000_000_000)); // 10 ms
        assert!((link.utilization(last) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn multi_rejects_zero_width() {
        let _ = MultiResource::new(0);
    }

    #[test]
    fn reservation_latency_accounts_queueing_and_flight() {
        let mut link = BandwidthResource::new(Bandwidth::from_gbps(1), ns(50));
        link.transfer(at(0), 1_000);
        let r = link.transfer(at(0), 1_000);
        assert_eq!(r.latency(at(0)), ns(1_000) + ns(1_000) + ns(50));
    }
}
