//! The metrics registry: hierarchical, handle-based telemetry.
//!
//! The primitives in [`crate::stats`] (counters, accumulators, histograms,
//! time-weighted signals) describe *one* quantity each. This module binds
//! them into a [`MetricsRegistry`] a simulation core can own: metrics are
//! created once under hierarchical dotted names (`mem.ddr.ch0.busy_ps`,
//! `gam.queue.near_mem.depth`, `storage.ssd0.read_bytes`) and recorded
//! through cheap index handles on the hot path — no string hashing per
//! sample.
//!
//! At the end of a run the registry folds into a [`MetricsSnapshot`]: a
//! name-sorted, schema-stable map of scalar summaries with two exporters,
//! a hand-rolled JSON dump (same no-dependency style as the Chrome trace
//! serializer) and a flat CSV for sweep post-processing.
//!
//! # Example
//!
//! ```
//! use reach_sim::metrics::MetricsRegistry;
//! use reach_sim::SimTime;
//!
//! let mut reg = MetricsRegistry::new();
//! let bytes = reg.counter("mem.ddr.ch0.bytes");
//! let depth = reg.gauge("gam.queue.near_mem.depth");
//! reg.add(bytes, 4096);
//! reg.gauge_set(depth, SimTime::from_ps(0), 2.0);
//! reg.gauge_set(depth, SimTime::from_ps(50), 4.0);
//! let snap = reg.snapshot(SimTime::from_ps(100));
//! assert!(snap.to_json().contains("\"mem.ddr.ch0.bytes\""));
//! ```

use crate::stats::{Counter, Histogram, TimeWeighted};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Handle to a monotonically increasing counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Handle to a piecewise-constant gauge (time-weighted signal).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GaugeId(usize);

/// Handle to a power-of-two bucketed histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HistogramId(usize);

/// Handle to a windowed occupancy gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OccupancyId(usize);

/// A time-windowed occupancy signal built from `[start, end)` busy windows.
///
/// Unlike [`TimeWeighted`], windows may be recorded **out of order** — a
/// discrete-event core discovers resource busy intervals in completion
/// order, not in start order. The gauge stores signed edges and sorts them
/// once at snapshot time.
#[derive(Clone, Debug, Default)]
pub struct WindowedGauge {
    /// `(instant_ps, delta)` edges: `+amount` where a window opens,
    /// `-amount` where it closes.
    edges: Vec<(u64, f64)>,
}

impl WindowedGauge {
    /// An empty gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one busy window of weight `amount` over `[start, end)`.
    /// Zero-length windows contribute nothing to the average but still
    /// count toward the peak at their instant.
    pub fn record(&mut self, start: SimTime, end: SimTime, amount: f64) {
        let s = start.since(SimTime::ZERO).as_ps();
        let e = end.since(SimTime::ZERO).as_ps();
        debug_assert!(s <= e, "WindowedGauge::record: window ends before start");
        self.edges.push((s, amount));
        self.edges.push((e, -amount));
    }

    /// Number of recorded windows.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.edges.len() / 2
    }

    /// `(time-weighted mean over [0, horizon], peak concurrent value)`.
    /// The mean is 0.0 over an empty horizon.
    #[must_use]
    pub fn summarize(&self, horizon: SimTime) -> (f64, f64) {
        let horizon_ps = horizon.since(SimTime::ZERO).as_ps();
        let mut edges = self.edges.clone();
        // Sort by time, closing edges first at ties so a window that ends
        // exactly where another starts never inflates the peak.
        edges.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).expect("finite")));
        let mut value = 0.0;
        let mut peak = 0.0f64;
        let mut weighted = 0.0;
        let mut last = 0u64;
        for (at, delta) in edges {
            let at = at.min(horizon_ps);
            weighted += value * (at - last) as f64;
            last = at;
            value += delta;
            peak = peak.max(value);
        }
        weighted += value * horizon_ps.saturating_sub(last) as f64;
        let mean = if horizon_ps == 0 {
            0.0
        } else {
            weighted / horizon_ps as f64
        };
        (mean, peak)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
    Occupancy,
}

/// A registry of named metrics with cheap handle-based recording.
///
/// Creating a metric is idempotent per name (the same handle comes back);
/// recording through a handle is an index into a dense vector.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<TimeWeighted>,
    histograms: Vec<Histogram>,
    occupancies: Vec<(String, WindowedGauge)>,
    index: BTreeMap<String, (Kind, usize)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &str, kind: Kind, next: usize) -> usize {
        match self.index.get(name) {
            Some(&(k, i)) => {
                assert!(
                    k == kind,
                    "MetricsRegistry: {name} already registered as {k:?}"
                );
                i
            }
            None => {
                self.index.insert(name.to_string(), (kind, next));
                next
            }
        }
    }

    /// Creates (or finds) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        let i = self.slot(name, Kind::Counter, self.counters.len());
        if i == self.counters.len() {
            self.counters.push(Counter::new(name));
        }
        CounterId(i)
    }

    /// Creates (or finds) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        let i = self.slot(name, Kind::Gauge, self.gauges.len());
        if i == self.gauges.len() {
            self.gauges.push(TimeWeighted::new(name));
        }
        GaugeId(i)
    }

    /// Creates (or finds) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        let i = self.slot(name, Kind::Histogram, self.histograms.len());
        if i == self.histograms.len() {
            self.histograms.push(Histogram::new(name));
        }
        HistogramId(i)
    }

    /// Creates (or finds) a windowed occupancy gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn occupancy(&mut self, name: &str) -> OccupancyId {
        let i = self.slot(name, Kind::Occupancy, self.occupancies.len());
        if i == self.occupancies.len() {
            self.occupancies
                .push((name.to_string(), WindowedGauge::new()));
        }
        OccupancyId(i)
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].add(n);
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].inc();
    }

    /// Sets a gauge at `at` (samples must arrive in time order).
    pub fn gauge_set(&mut self, id: GaugeId, at: SimTime, value: f64) {
        self.gauges[id.0].set(at, value);
    }

    /// Records one histogram sample.
    pub fn record(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].record(v);
    }

    /// Records one occupancy window (may arrive out of time order).
    pub fn occupy(&mut self, id: OccupancyId, start: SimTime, end: SimTime, amount: f64) {
        self.occupancies[id.0].1.record(start, end, amount);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].get()
    }

    /// Folds every metric into a snapshot over the horizon `[0, until]`.
    #[must_use]
    pub fn snapshot(&self, until: SimTime) -> MetricsSnapshot {
        let horizon_ps = until.since(SimTime::ZERO).as_ps();
        let mut snap = MetricsSnapshot::new(horizon_ps);
        for c in &self.counters {
            snap.set(c.name(), MetricValue::Counter { value: c.get() });
        }
        for g in &self.gauges {
            let mean = if horizon_ps == 0 {
                0.0
            } else {
                g.average(until)
            };
            snap.set(
                g.name(),
                MetricValue::Gauge {
                    mean,
                    last: g.current(),
                },
            );
        }
        for h in &self.histograms {
            snap.set(
                h.name(),
                MetricValue::Histogram {
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.percentile_bound(50),
                    p99: h.percentile_bound(99),
                },
            );
        }
        for (name, w) in &self.occupancies {
            let (mean, peak) = w.summarize(until);
            snap.set(name, MetricValue::Occupancy { mean, peak });
        }
        snap
    }
}

/// One summarized metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter {
        /// Final value.
        value: u64,
    },
    /// A piecewise-constant signal.
    Gauge {
        /// Time-weighted mean over the horizon.
        mean: f64,
        /// Last sampled value.
        last: f64,
    },
    /// A sample distribution.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Mean sample.
        mean: f64,
        /// Upper bound on the median.
        p50: u64,
        /// Upper bound on the 99th percentile.
        p99: u64,
    },
    /// A windowed occupancy summary.
    Occupancy {
        /// Time-weighted mean concurrent occupancy.
        mean: f64,
        /// Peak concurrent occupancy.
        peak: f64,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter { .. } => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram { .. } => "histogram",
            MetricValue::Occupancy { .. } => "occupancy",
        }
    }
}

/// Stable float formatting for the exporters: six decimal places, which is
/// enough for ratios and means while keeping golden files byte-comparable.
fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// A name-sorted, schema-stable summary of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    horizon_ps: u64,
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot over `[0, horizon_ps]`.
    #[must_use]
    pub fn new(horizon_ps: u64) -> Self {
        MetricsSnapshot {
            horizon_ps,
            metrics: BTreeMap::new(),
        }
    }

    /// The snapshot horizon in picoseconds.
    #[must_use]
    pub fn horizon_ps(&self) -> u64 {
        self.horizon_ps
    }

    /// Inserts (or overwrites) a metric.
    pub fn set(&mut self, name: &str, value: MetricValue) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Shorthand for inserting a [`MetricValue::Counter`] — the shape every
    /// end-of-run component pull uses.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.set(name, MetricValue::Counter { value });
    }

    /// Shorthand for inserting a point-in-time [`MetricValue::Gauge`]
    /// (`mean == last == value`) — process-level facts recorded once per
    /// run, like the selected SIMD dispatch path.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.set(
            name,
            MetricValue::Gauge {
                mean: value,
                last: value,
            },
        );
    }

    /// The metric under `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no metric was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Serializes as a hand-rolled JSON object. Metrics appear in name
    /// order, floats at fixed precision, so the output is byte-stable for
    /// a given run — golden files and CI diffs work.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"reach-metrics-v1\",");
        let _ = writeln!(out, "  \"horizon_ps\": {},", self.horizon_ps);
        out.push_str("  \"metrics\": {");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": ", escape(name));
            match v {
                MetricValue::Counter { value } => {
                    let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{value}}}");
                }
                MetricValue::Gauge { mean, last } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"gauge\",\"mean\":{},\"last\":{}}}",
                        fmt_f64(*mean),
                        fmt_f64(*last)
                    );
                }
                MetricValue::Histogram {
                    count,
                    mean,
                    p50,
                    p99,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"histogram\",\"count\":{count},\"mean\":{},\"p50\":{p50},\"p99\":{p99}}}",
                        fmt_f64(*mean)
                    );
                }
                MetricValue::Occupancy { mean, peak } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"occupancy\",\"mean\":{},\"peak\":{}}}",
                        fmt_f64(*mean),
                        fmt_f64(*peak)
                    );
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Serializes as flat CSV (one row per metric, empty cells where a
    /// column does not apply to the metric kind).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,value,count,mean,last,p50,p99,peak\n");
        for (name, v) in &self.metrics {
            let kind = v.kind();
            match v {
                MetricValue::Counter { value } => {
                    let _ = writeln!(out, "{name},{kind},{value},,,,,,");
                }
                MetricValue::Gauge { mean, last } => {
                    let _ = writeln!(
                        out,
                        "{name},{kind},,,{},{},,,",
                        fmt_f64(*mean),
                        fmt_f64(*last)
                    );
                }
                MetricValue::Histogram {
                    count,
                    mean,
                    p50,
                    p99,
                } => {
                    let _ = writeln!(
                        out,
                        "{name},{kind},,{count},{},,{p50},{p99},",
                        fmt_f64(*mean)
                    );
                }
                MetricValue::Occupancy { mean, peak } => {
                    let _ = writeln!(
                        out,
                        "{name},{kind},,,{},,,,{}",
                        fmt_f64(*mean),
                        fmt_f64(*peak)
                    );
                }
            }
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(n: u64) -> SimTime {
        SimTime::from_ps(n)
    }

    #[test]
    fn handles_are_idempotent_per_name() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x.bytes");
        let b = reg.counter("x.bytes");
        assert_eq!(a, b);
        reg.add(a, 3);
        reg.inc(b);
        assert_eq!(reg.counter_value(a), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_rejected() {
        let mut reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn gauge_summarizes_time_weighted() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("q.depth");
        reg.gauge_set(g, ps(0), 2.0);
        reg.gauge_set(g, ps(50), 4.0);
        let snap = reg.snapshot(ps(100));
        match snap.get("q.depth").unwrap() {
            MetricValue::Gauge { mean, last } => {
                assert!((mean - 3.0).abs() < 1e-12);
                assert_eq!(*last, 4.0);
            }
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn windowed_gauge_tolerates_out_of_order_windows() {
        let mut w = WindowedGauge::new();
        // Later window recorded first: [50, 100) then [0, 50).
        w.record(ps(50), ps(100), 1.0);
        w.record(ps(0), ps(50), 1.0);
        w.record(ps(25), ps(75), 1.0); // overlaps both
        let (mean, peak) = w.summarize(ps(100));
        assert!((mean - 1.5).abs() < 1e-12, "mean {mean}");
        assert!((peak - 2.0).abs() < 1e-12, "peak {peak}");
        assert_eq!(w.windows(), 3);
    }

    #[test]
    fn windowed_gauge_empty_horizon() {
        let w = WindowedGauge::new();
        assert_eq!(w.summarize(SimTime::ZERO), (0.0, 0.0));
    }

    #[test]
    fn back_to_back_windows_do_not_inflate_peak() {
        let mut w = WindowedGauge::new();
        w.record(ps(0), ps(10), 1.0);
        w.record(ps(10), ps(20), 1.0);
        let (_, peak) = w.summarize(ps(20));
        assert!((peak - 1.0).abs() < 1e-12, "peak {peak}");
    }

    #[test]
    fn snapshot_orders_by_name_and_counts() {
        let mut reg = MetricsRegistry::new();
        let b = reg.counter("b.count");
        let a = reg.counter("a.count");
        reg.add(b, 1);
        reg.add(a, 2);
        let snap = reg.snapshot(ps(10));
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.count", "b.count"]);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert_eq!(snap.horizon_ps(), 10);
    }

    #[test]
    fn histogram_summary_in_snapshot() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat.ps");
        for v in [8, 9, 10, 1 << 20] {
            reg.record(h, v);
        }
        let snap = reg.snapshot(ps(1));
        match snap.get("lat.ps").unwrap() {
            MetricValue::Histogram { count, p50, .. } => {
                assert_eq!(*count, 4);
                assert_eq!(*p50, 15);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_escapes_names() {
        let mut snap = MetricsSnapshot::new(0);
        snap.set("weird\"name", MetricValue::Counter { value: 1 });
        assert!(snap.to_json().contains("weird\\\"name"));
    }

    #[test]
    fn set_counter_shorthand() {
        let mut snap = MetricsSnapshot::new(5);
        snap.set_counter("x.bytes", 42);
        assert_eq!(
            snap.get("x.bytes"),
            Some(&MetricValue::Counter { value: 42 })
        );
    }
}
