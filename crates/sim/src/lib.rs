//! # reach-sim — discrete-event simulation engine
//!
//! This crate is the substrate under the ReACH compute-hierarchy simulator.
//! It provides the pieces every timing model in the workspace is built from:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer picosecond timeline, so that
//!   a 2 GHz core, 273/200/150 MHz FPGA kernels, DDR4 bus ticks and PCIe
//!   serialization delays can share one clock without rounding drift.
//! * [`EventQueue`] — a deterministic priority queue of timestamped events.
//!   Ties are broken by insertion order, which makes every simulation in the
//!   workspace reproducible bit-for-bit.
//! * [`resource`] — *resource calendars*: the serial-server and bandwidth
//!   models used for DRAM banks, memory channels, PCIe links, SSD flash
//!   channels and accelerators. Contention, queueing delay and saturation
//!   emerge from these calendars instead of being hard-coded.
//! * [`stats`] — counters, accumulators, histograms and time-weighted
//!   averages used to build the experiment reports.
//!
//! The engine is *transaction-level*: components reserve time windows on
//! resources rather than exchanging per-cycle messages. This reproduces the
//! bandwidth/occupancy behaviour the ReACH paper's conclusions rest on while
//! remaining fast enough to sweep configurations on a laptop.
//!
//! ## Example
//!
//! ```
//! use reach_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_ns(5), "later");
//! q.push(SimTime::ZERO + SimDuration::from_ns(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_ns(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod event;
pub mod fingerprint;
pub mod intern;
pub mod metrics;
pub mod rate;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use fingerprint::{checksum64, Fingerprint, FingerprintBuilder};
pub use intern::Symbol;
pub use metrics::{
    CounterId, GaugeId, HistogramId, MetricValue, MetricsRegistry, MetricsSnapshot, OccupancyId,
    WindowedGauge,
};
pub use rate::{Bandwidth, Frequency, Link};
pub use resource::{BandwidthResource, MultiResource, Reservation, SerialResource};
pub use stats::{Accumulator, Counter, Histogram, LatencyHistogram, TimeWeighted};
pub use time::{SimDuration, SimTime};
