//! A stable, dependency-free 128-bit fingerprint hasher.
//!
//! [`std::hash::Hasher`] makes no stability promises across Rust releases
//! (and `DefaultHasher` is explicitly randomized per process in spirit), so
//! anything persisted — golden files, cross-run caches — needs its own
//! hash. [`FingerprintBuilder`] is FNV-1a widened to 128 bits: simple,
//! fast for the short byte streams a configuration flattens to, and with
//! 128 bits of state collision-resistant enough that two distinct
//! configurations colliding is not a practical concern (birthday bound
//! ~2^64 configurations).
//!
//! Streams are *framed*: every value is written with a type tag and, for
//! variable-length data, a length prefix, so `("ab", "c")` and
//! `("a", "bc")` cannot collide structurally. Builders are seeded with a
//! domain string, so fingerprints from different domains (machine configs,
//! pipelines, scenarios) never compare equal by accident.

use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
const FNV64_PRIME: u64 = 0x00000100000001b3;

/// FNV-1a-64 over a raw byte slice: the record checksum used by persisted
/// stores (e.g. the on-disk result cache). 64 bits is plenty for
/// *corruption detection* — unlike [`FingerprintBuilder`] this is not an
/// identity hash, so no framing and no domain seed; the bytes being
/// checksummed already carry their own structure.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut state = FNV64_OFFSET;
    for &byte in bytes {
        state ^= u64::from(byte);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

/// A 128-bit stable hash value.
///
/// Renders as 32 lowercase hex digits; parseable back via
/// [`Fingerprint::parse`] so golden files round-trip.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Incremental FNV-1a-128 over a framed byte stream.
#[derive(Clone, Debug)]
pub struct FingerprintBuilder {
    state: u128,
}

impl FingerprintBuilder {
    /// A builder seeded with `domain`, which separates unrelated
    /// fingerprint namespaces (and doubles as a version tag: bump the
    /// domain string when the encoding changes incompatibly).
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut b = FingerprintBuilder {
            state: FNV128_OFFSET,
        };
        b.write_str(domain);
        b
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Writes raw bytes, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.absorb(&[0x01]);
        self.absorb(&(bytes.len() as u64).to_le_bytes());
        self.absorb(bytes);
    }

    /// Writes a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.absorb(&[0x02]);
        self.absorb(&(s.len() as u64).to_le_bytes());
        self.absorb(s.as_bytes());
    }

    /// Writes an unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        self.absorb(&[0x03]);
        self.absorb(&v.to_le_bytes());
    }

    /// Writes a `usize` (as 64-bit, so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.absorb(&[0x04, u8::from(v)]);
    }

    /// Writes an `f64` by bit pattern (`-0.0` and `0.0` are distinct, NaN
    /// payloads are preserved — the goal is "same config, same bits", not
    /// numeric equivalence).
    pub fn write_f64(&mut self, v: f64) {
        self.absorb(&[0x05]);
        self.absorb(&v.to_bits().to_le_bytes());
    }

    /// Writes any `Debug`-rendered value. Derived `Debug` output lists
    /// every field of a struct deterministically, which makes this the
    /// self-maintaining way to cover "every knob" of a plain-data config
    /// type: a field added later flows into the fingerprint without anyone
    /// remembering to extend a hand-written encoder. Not suitable for
    /// types whose `Debug` elides fields or iterates unordered containers.
    pub fn write_debug<T: fmt::Debug>(&mut self, v: &T) {
        self.absorb(&[0x06]);
        self.write_str(&format!("{v:?}"));
    }

    /// Finishes the stream and returns the fingerprint.
    #[must_use]
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(f: impl FnOnce(&mut FingerprintBuilder)) -> Fingerprint {
        let mut b = FingerprintBuilder::new("test");
        f(&mut b);
        b.finish()
    }

    #[test]
    fn stable_across_calls() {
        let a = fp(|b| {
            b.write_str("hello");
            b.write_u64(42);
        });
        let b = fp(|b| {
            b.write_str("hello");
            b.write_u64(42);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn known_value_is_pinned() {
        // Pins the encoding itself: if this changes, every persisted
        // fingerprint (golden files, cross-version caches) is invalidated
        // and the domain strings must be bumped.
        let v = fp(|b| b.write_u64(1)).to_string();
        assert_eq!(v, "0c27e14cae5e34ae9f726d599c36e257");
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let ab_c = fp(|b| {
            b.write_str("ab");
            b.write_str("c");
        });
        let a_bc = fp(|b| {
            b.write_str("a");
            b.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn types_are_tagged() {
        assert_ne!(fp(|b| b.write_u64(0)), fp(|b| b.write_f64(0.0)));
        assert_ne!(fp(|b| b.write_bool(true)), fp(|b| b.write_u64(1)));
        assert_ne!(fp(|b| b.write_str("1")), fp(|b| b.write_bytes(b"1")));
    }

    #[test]
    fn domains_separate_namespaces() {
        let a = FingerprintBuilder::new("domain-a").finish();
        let b = FingerprintBuilder::new("domain-b").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn float_bit_patterns_distinguish() {
        assert_ne!(fp(|b| b.write_f64(0.0)), fp(|b| b.write_f64(-0.0)));
        assert_ne!(fp(|b| b.write_f64(0.74)), fp(|b| b.write_f64(0.75)));
    }

    #[test]
    fn display_round_trips() {
        let v = fp(|b| b.write_str("round-trip"));
        assert_eq!(Fingerprint::parse(&v.to_string()), Some(v));
        assert_eq!(v.to_string().len(), 32);
        assert!(Fingerprint::parse("xyz").is_none());
    }

    #[test]
    fn checksum64_is_pinned_and_sensitive() {
        // Pinned value: the on-disk cache format depends on this exact
        // function; a change here must bump the store magic.
        assert_eq!(checksum64(b""), 0xcbf29ce484222325);
        assert_eq!(checksum64(b"reach"), checksum64(b"reach"));
        assert_ne!(checksum64(b"reach"), checksum64(b"reacH"));
        // Single-bit flips anywhere in a longer payload are caught.
        let payload: Vec<u8> = (0..=255u8).collect();
        let base = checksum64(&payload);
        let mut flipped = payload.clone();
        flipped[100] ^= 0x01;
        assert_ne!(checksum64(&flipped), base);
    }

    #[test]
    fn debug_write_covers_struct_fields() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Knobs {
            a: u32,
            b: f64,
        }
        let x = fp(|b| b.write_debug(&Knobs { a: 1, b: 2.0 }));
        let y = fp(|b| b.write_debug(&Knobs { a: 1, b: 2.5 }));
        assert_ne!(x, y);
    }
}
