//! The calendar (bucketed) priority queue backing [`crate::EventQueue`].
//!
//! A classic calendar queue [Brown 1988] keyed by `(time, seq)`: the near
//! future is a circular array of *buckets*, each covering one `width`-ps
//! slot of the current *day* (`width * buckets.len()` ps); events beyond
//! the current day wait in an overflow heap and are filed into buckets
//! when their day arrives. For the near-monotonic timestamp streams a
//! discrete-event core produces, push and pop are O(1) amortized — no
//! `O(log n)` sift per event — while the slot partition keeps the full
//! `(time, seq)` total order exact.
//!
//! Determinism contract: [`Calendar::pop`] always removes the entry with
//! the smallest `(time, seq)` pair, so same-instant entries leave in push
//! (sequence) order — byte-for-byte the order the previous binary-heap
//! implementation produced. The bucket layout (width, day anchor, bucket
//! count) is pure bookkeeping: resizing re-files entries but never changes
//! the pop order.
//!
//! Steady state allocates nothing: buckets are `Vec`s that keep their
//! capacity across the push/pop churn, and the overflow heap only grows.
//! Allocation happens when the queue outgrows its bucket array (amortized
//! by the doubling policy), when a pop finds a crowded bucket whose width
//! can still be split (amortized by the halving/doubling guard on
//! `last_sized_len`), and inside [`Calendar::retune`], which runs at most
//! once per `TUNE_INTERVAL` pops.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Smallest bucket count; covers the double-digit pending-event working
/// sets the machine model produces without any resizing.
const MIN_BUCKETS: usize = 32;
/// Largest bucket count; bounds rebuild cost and per-day scan work.
const MAX_BUCKETS: usize = 1 << 16;
/// Bucket width used before any entries have established a timescale.
const DEFAULT_WIDTH: u64 = 1 << 20; // ~1 us
/// Pops between sparsity checks (see [`Calendar::retune`]).
const TUNE_INTERVAL: u64 = 256;
/// A popped bucket holding more than this many entries is *crowded*: the
/// width is too coarse for the event spacing and every pop is scanning
/// linearly. Crowding triggers a rebuild (which re-estimates the width
/// from the actual time span) unless the queue size hasn't meaningfully
/// changed since the last rebuild — same-instant pileups cannot be split
/// by any width, and rebuilding again would thrash.
const CROWDED: usize = 32;

/// One filed entry. The payload never participates in ordering.
struct Filed<E> {
    at: u64,
    seq: u64,
    payload: E,
}

/// Overflow-heap entry, inverted so the max-heap pops the earliest first.
struct Overflow<E> {
    at: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Overflow<E> {}
impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The calendar structure. Times are raw picosecond counts; sequence
/// numbers are assigned by the caller ([`crate::EventQueue`]) and must be
/// unique.
pub(crate) struct Calendar<E> {
    /// The current day's slots. `buckets[i]` holds exactly the entries
    /// with `day_start + i*width <= at < day_start + (i+1)*width`.
    buckets: Vec<Vec<Filed<E>>>,
    /// Slot width in picoseconds (>= 1).
    width: u64,
    /// First instant of the current day.
    day_start: u64,
    /// All buckets before `cursor` are empty.
    cursor: usize,
    /// Entries currently filed in buckets (the rest are in `overflow`).
    in_buckets: usize,
    /// Entries at or beyond the current day's end.
    overflow: BinaryHeap<Overflow<E>>,
    len: usize,
    /// Timestamp of the last popped entry. The caller guarantees pushes
    /// are never earlier, so anchoring `day_start` at or before `clock`
    /// keeps every future entry inside `[day_start, ..)`.
    clock: u64,
    /// Pops since the last retune check.
    pops: u64,
    /// Empty buckets skipped since the last retune check.
    scans: u64,
    /// Queue length at the last rebuild — the crowding check only fires
    /// again once the population has doubled or halved since then.
    last_sized_len: usize,
}

impl<E> Calendar<E> {
    pub(crate) fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-sizes the bucket array so `capacity` near-term entries file
    /// without reallocating.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let n = bucket_count_for(capacity);
        let per_bucket = capacity.div_ceil(n).max(1);
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, || Vec::with_capacity(per_bucket));
        Calendar {
            buckets,
            width: DEFAULT_WIDTH,
            day_start: 0,
            cursor: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            clock: 0,
            pops: 0,
            scans: 0,
            last_sized_len: 0,
        }
    }

    pub(crate) fn reserve(&mut self, additional: usize) {
        self.overflow.reserve(additional);
    }

    /// Entries the structure can hold without growing any allocation.
    pub(crate) fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.overflow.capacity()
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn day_len(&self) -> u64 {
        self.width.saturating_mul(self.buckets.len() as u64)
    }

    fn day_end(&self) -> u64 {
        self.day_start.saturating_add(self.day_len())
    }

    fn slot(&self, at: u64) -> usize {
        (((at - self.day_start) / self.width) as usize).min(self.buckets.len() - 1)
    }

    /// Files `payload` under `(at, seq)`. The caller guarantees `at` is
    /// not in the past and `seq` increases across pushes.
    pub(crate) fn push(&mut self, at: u64, seq: u64, payload: E) {
        if self.len == 0 {
            // Re-anchor the (empty) calendar on the current clock so the
            // day covers every legal push time, however far ahead `at` is.
            self.day_start = (self.clock / self.width) * self.width;
            self.cursor = 0;
        }
        debug_assert!(at >= self.day_start, "push below the day anchor");
        if at < self.day_end() {
            let idx = self.slot(at);
            self.buckets[idx].push(Filed { at, seq, payload });
            self.in_buckets += 1;
        } else {
            self.overflow.push(Overflow { at, seq, payload });
        }
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Moves every overflow entry belonging to the current day into its
    /// bucket.
    fn drain_overflow(&mut self) {
        let day_end = self.day_end();
        while let Some(top) = self.overflow.peek() {
            if top.at >= day_end {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry vanished");
            let idx = self.slot(e.at);
            self.buckets[idx].push(Filed {
                at: e.at,
                seq: e.seq,
                payload: e.payload,
            });
            self.in_buckets += 1;
        }
    }

    /// Advances `cursor` (and, when needed, the day) to the first
    /// non-empty bucket. Only call with `len > 0`.
    fn seek(&mut self) {
        loop {
            if self.in_buckets == 0 {
                // Nothing this day: jump straight to the overflow min's
                // day instead of walking empty days bucket by bucket.
                let top_at = self.overflow.peek().expect("len > 0").at;
                self.day_start = (top_at / self.width) * self.width;
                self.cursor = 0;
                self.drain_overflow();
                debug_assert!(self.in_buckets > 0);
                continue;
            }
            if self.cursor >= self.buckets.len() {
                self.day_start = self.day_end();
                self.cursor = 0;
                self.drain_overflow();
                continue;
            }
            if self.buckets[self.cursor].is_empty() {
                self.cursor += 1;
                self.scans += 1;
                continue;
            }
            return;
        }
    }

    /// Index of the `(at, seq)`-minimal entry of `bucket`.
    fn min_index(bucket: &[Filed<E>]) -> usize {
        let mut mi = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            if (e.at, e.seq) < (bucket[mi].at, bucket[mi].seq) {
                mi = i;
            }
        }
        mi
    }

    /// Removes and returns the `(at, seq)`-minimal entry.
    pub(crate) fn pop(&mut self) -> Option<(u64, u64, E)> {
        if self.len == 0 {
            return None;
        }
        self.seek();
        if self.buckets[self.cursor].len() > CROWDED
            && self.width > 1
            && (self.len > 2 * self.last_sized_len || 2 * self.len < self.last_sized_len)
        {
            self.rebuild();
            self.seek();
        }
        let bucket = &mut self.buckets[self.cursor];
        let mi = Self::min_index(bucket);
        let e = bucket.swap_remove(mi);
        self.in_buckets -= 1;
        self.len -= 1;
        self.clock = e.at;
        self.pops += 1;
        if self.pops >= TUNE_INTERVAL {
            self.retune();
        }
        Some((e.at, e.seq, e.payload))
    }

    /// After popping an entry at `at` (which leaves `cursor` on its
    /// bucket), drains every remaining same-instant entry in ascending
    /// sequence order, appending the payloads to `out`.
    pub(crate) fn drain_instant_into(&mut self, at: u64, out: &mut Vec<E>) {
        loop {
            let bucket = &mut self.buckets[self.cursor];
            let mut best: Option<usize> = None;
            for (i, e) in bucket.iter().enumerate() {
                if e.at == at && best.is_none_or(|b| e.seq < bucket[b].seq) {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => {
                    out.push(bucket.swap_remove(i).payload);
                    self.in_buckets -= 1;
                    self.len -= 1;
                }
                None => return,
            }
        }
    }

    /// Earliest pending `(at, seq)` without removing it.
    pub(crate) fn peek(&self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.in_buckets == 0 {
            let top = self.overflow.peek().expect("len > 0");
            return Some((top.at, top.seq));
        }
        // Entries beyond `cursor` are slot-partitioned: the first
        // non-empty bucket holds the minimum. Overflow entries are all at
        // or beyond the day's end, so they can never undercut it.
        let mut c = self.cursor;
        loop {
            debug_assert!(c < self.buckets.len(), "in_buckets > 0 but no bucket found");
            let bucket = &self.buckets[c];
            if bucket.is_empty() {
                c += 1;
                continue;
            }
            let e = &bucket[Self::min_index(bucket)];
            return Some((e.at, e.seq));
        }
    }

    /// Checks whether the bucket layout still fits the workload and
    /// rebuilds if not: too many empty-bucket skips per pop means the
    /// width is too fine for the event spacing.
    fn retune(&mut self) {
        let sparse = self.scans > 8 * self.pops;
        self.pops = 0;
        self.scans = 0;
        if sparse && self.len > 0 {
            self.rebuild();
        }
    }

    /// Re-files every entry under a freshly estimated width and bucket
    /// count. Order is untouched — the calendar layout never participates
    /// in the `(at, seq)` comparison.
    fn rebuild(&mut self) {
        self.last_sized_len = self.len;
        let mut entries: Vec<Filed<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.extend(self.overflow.drain().map(|e| Filed {
            at: e.at,
            seq: e.seq,
            payload: e.payload,
        }));
        debug_assert_eq!(entries.len(), self.len);

        if !entries.is_empty() {
            let min = entries.iter().map(|e| e.at).min().expect("non-empty");
            let max = entries.iter().map(|e| e.at).max().expect("non-empty");
            let span = max - min;
            // Aim for a day covering ~4x the span of what is currently
            // queued: pushes land a little past the pending window in the
            // steady state, and a too-tight day would bounce them through
            // the overflow heap (heap push + heap pop + bucket re-file)
            // instead of filing them straight into a bucket.
            self.width =
                (span.saturating_mul(4) / entries.len() as u64).clamp(1, DEFAULT_WIDTH * 1024);
            let n = bucket_count_for(entries.len());
            if n != self.buckets.len() {
                self.buckets.resize_with(n, Vec::new);
                self.buckets.truncate(n);
            }
            // Anchor at the clock: every pending entry sits at or after
            // the last pop, and so does every legal future push.
            self.day_start = (self.clock / self.width) * self.width;
        }
        self.cursor = 0;
        self.in_buckets = 0;
        self.len = 0;
        let day_end = self.day_end();
        for e in entries {
            if e.at < day_end {
                let idx = self.slot(e.at);
                self.buckets[idx].push(e);
                self.in_buckets += 1;
            } else {
                self.overflow.push(Overflow {
                    at: e.at,
                    seq: e.seq,
                    payload: e.payload,
                });
            }
            self.len += 1;
        }
    }
}

/// Power-of-two bucket count targeting ~2 entries per bucket.
fn bucket_count_for(entries: usize) -> usize {
    (entries / 2)
        .next_power_of_two()
        .clamp(MIN_BUCKETS, MAX_BUCKETS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(c: &mut Calendar<u32>) -> Vec<(u64, u64, u32)> {
        std::iter::from_fn(|| c.pop()).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut c = Calendar::new();
        c.push(30, 0, 1);
        c.push(10, 1, 2);
        c.push(10, 2, 3);
        c.push(20, 3, 4);
        let got: Vec<u32> = drain(&mut c).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(got, [2, 3, 4, 1]);
    }

    #[test]
    fn far_future_entries_overflow_and_return() {
        let mut c = Calendar::new();
        let far = DEFAULT_WIDTH * (MIN_BUCKETS as u64) * 1000;
        c.push(far, 0, 9);
        c.push(5, 1, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(), Some((5, 1)));
        assert_eq!(c.pop(), Some((5, 1, 1)));
        // The jump path must land on the overflow entry without walking
        // every empty day in between.
        assert_eq!(c.pop(), Some((far, 0, 9)));
        assert!(c.is_empty());
    }

    #[test]
    fn growth_rebuild_preserves_order() {
        let mut c = Calendar::new();
        let n: u64 = 10_000;
        for i in 0..n {
            // Scrambled times with collisions.
            c.push((i * 7919) % 1000, i, i as u32);
        }
        let got = drain(&mut c);
        assert_eq!(got.len(), n as usize);
        for w in got.windows(2) {
            assert!(
                (w[0].0, w[0].1) < (w[1].0, w[1].1),
                "order violated: {:?} then {:?}",
                (w[0].0, w[0].1),
                (w[1].0, w[1].1)
            );
        }
    }

    #[test]
    fn drain_instant_takes_fifo_ties_only() {
        let mut c = Calendar::new();
        c.push(10, 0, 1);
        c.push(10, 1, 2);
        c.push(11, 2, 4);
        c.push(10, 3, 3);
        let (at, _, first) = c.pop().expect("non-empty");
        assert_eq!((at, first), (10, 1));
        let mut out = vec![first];
        c.drain_instant_into(at, &mut out);
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(c.pop(), Some((11, 2, 4)));
    }

    #[test]
    fn interleaved_push_pop_over_many_days() {
        // Near-monotonic churn far past the initial day window.
        let mut c = Calendar::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for i in 0..64u64 {
            c.push(i * 100, seq, i as u32);
            seq += 1;
        }
        for i in 0..2_000u64 {
            let (at, _, _) = c.pop().expect("non-empty");
            assert!(at >= now, "time went backwards");
            now = at;
            c.push(now + DEFAULT_WIDTH * 3 + (i % 7) * 1000, seq, i as u32);
            seq += 1;
        }
        assert_eq!(c.len(), 64);
    }

    #[test]
    fn crowded_bucket_triggers_width_rebuild() {
        // A pre-sized calendar never grows its bucket array, so a burst of
        // tightly spaced events piles into one default-width slot; the
        // first pop must detect the crowding and re-estimate the width,
        // keeping pops O(entries-per-instant) instead of O(len).
        let mut c = Calendar::with_capacity(10_000);
        for i in 0..10_000u64 {
            c.push(i / 16, i, i as u32);
        }
        assert_eq!(c.width, DEFAULT_WIDTH, "no rebuild during pushes");
        assert_eq!(c.pop(), Some((0, 0, 0)));
        assert!(c.width < DEFAULT_WIDTH, "crowding must re-estimate width");
        let got = drain(&mut c);
        assert_eq!(got.len(), 9_999);
        for w in got.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
    }

    #[test]
    fn capacity_is_at_least_requested() {
        let c: Calendar<u32> = Calendar::with_capacity(64);
        assert!(c.capacity() >= 64);
        let mut c: Calendar<u32> = Calendar::new();
        c.reserve(32);
        assert!(c.capacity() >= 32);
    }
}
