//! Simulation time: an integer picosecond timeline.
//!
//! All timing models in the workspace operate on [`SimTime`] (an absolute
//! point on the timeline) and [`SimDuration`] (a span). Both wrap a `u64`
//! count of picoseconds: at 1 ps resolution a `u64` covers ~213 days of
//! simulated time, far beyond any experiment in this repository, while still
//! representing a 2 GHz CPU cycle (500 ps), a DDR4-2400 bus tick (833 ps) and
//! a 273 MHz FPGA kernel cycle (3663 ps) exactly enough that accumulated
//! rounding error stays below one part in 10^5 over any run.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute point on the simulated timeline, in picoseconds since the
/// start of the simulation.
///
/// `SimTime` is ordered, hashable and cheap to copy. Arithmetic with
/// [`SimDuration`] is checked in debug builds (overflow panics) and
/// saturating would be a bug: an overflowing timestamp means the simulation
/// configuration is broken, so we want the loud failure.
///
/// # Example
///
/// ```
/// use reach_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ns(3);
/// assert_eq!(t.as_ps(), 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "idle forever" marker.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw picosecond count.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Returns the raw picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Returns this instant expressed in (fractional) microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Returns this instant expressed in (fractional) milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Returns this instant expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A span of simulated time, in picoseconds.
///
/// # Example
///
/// ```
/// use reach_sim::SimDuration;
/// let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ps(), 2_500_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw picosecond count.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large for the
    /// timeline.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds value {secs}"
        );
        let ps = secs * PS_PER_S as f64;
        assert!(
            ps <= u64::MAX as f64,
            "SimDuration::from_secs_f64: {secs}s overflows the timeline"
        );
        SimDuration(ps.round() as u64)
    }

    /// Returns the raw picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the span expressed in (fractional) nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Returns the span expressed in (fractional) microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Returns the span expressed in (fractional) milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Returns the span expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// `true` when the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Multiplies the span by an integer scale factor using 128-bit
    /// intermediate arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows the timeline.
    #[must_use]
    pub fn scaled(self, factor: u64) -> SimDuration {
        let wide = u128::from(self.0) * u128::from(factor);
        assert!(
            wide <= u128::from(u64::MAX),
            "SimDuration::scaled: overflow ({self:?} * {factor})"
        );
        SimDuration(wide as u64)
    }

    /// Divides the span by `n`, rounding up (never under-reports time).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn div_ceil(self, n: u64) -> SimDuration {
        assert!(n > 0, "SimDuration::div_ceil: divide by zero");
        SimDuration(self.0.div_ceil(n))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate to SimTime's human-friendly unit selection.
        fmt::Display::fmt(&SimTime(self.0), f)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.scaled(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        assert!(rhs > 0, "SimDuration division by zero");
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_ps(10);
        let d = SimDuration::from_ps(32);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_ps(), 1);
        assert_eq!(SimDuration::from_secs_f64(2.5e-12).as_ps(), 3); // round half up
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_ps(5);
        let b = SimTime::from_ps(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_ps(5);
        let db = SimDuration::from_ps(9);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn scaled_uses_wide_arithmetic() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.scaled(3).as_ps(), 3 * 1_000_000_000_000);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn scaled_panics_on_overflow() {
        let _ = SimDuration::from_ps(u64::MAX).scaled(2);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(SimDuration::from_ps(10).div_ceil(3).as_ps(), 4);
        assert_eq!(SimDuration::from_ps(9).div_ceil(3).as_ps(), 3);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ps(1_500).to_string(), "1.500ns");
        assert_eq!(SimTime::from_ps(2_000_000).to_string(), "2.000us");
        assert_eq!(SimTime::from_ps(3_000_000_000).to_string(), "3.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn debug_is_nonempty_for_zero() {
        assert_eq!(format!("{:?}", SimTime::ZERO), "0ps");
        assert_eq!(format!("{:?}", SimDuration::ZERO), "0ps");
    }
}
