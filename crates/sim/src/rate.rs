//! Clock frequencies and link bandwidths.
//!
//! Two quantities recur in every timing model in this workspace: *how long is
//! one cycle of this clock* and *how long does it take to push N bytes down
//! this pipe*. [`Frequency`] and [`Bandwidth`] answer those questions with
//! 128-bit intermediate arithmetic so the conversions stay exact across the
//! full range of values the experiments use (150 MHz kernels to 100 GB/s
//! cache ports).

use crate::time::SimDuration;
use std::fmt;

const PS_PER_S: u128 = 1_000_000_000_000;

/// A clock frequency in hertz.
///
/// # Example
///
/// ```
/// use reach_sim::Frequency;
/// let kernel = Frequency::from_mhz(273);
/// assert_eq!(kernel.cycles(273_000_000).as_secs_f64(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero: a zero-frequency clock would make every cycle
    /// count conversion meaningless.
    #[must_use]
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "Frequency must be positive");
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero or the hertz value overflows `u64`.
    #[must_use]
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(
            mhz.checked_mul(1_000_000)
                .unwrap_or_else(|| panic!("Frequency::from_mhz: {mhz} MHz overflows u64 hertz")),
        )
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is zero or the hertz value overflows `u64`.
    #[must_use]
    pub fn from_ghz(ghz: u64) -> Self {
        Self::from_hz(
            ghz.checked_mul(1_000_000_000)
                .unwrap_or_else(|| panic!("Frequency::from_ghz: {ghz} GHz overflows u64 hertz")),
        )
    }

    /// Returns the frequency in hertz.
    #[must_use]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in (fractional) megahertz.
    #[must_use]
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The period of one clock cycle, rounded up to the next picosecond so a
    /// cycle is never under-billed.
    #[must_use]
    pub fn period(self) -> SimDuration {
        SimDuration::from_ps((PS_PER_S.div_ceil(u128::from(self.0))) as u64)
    }

    /// The time taken by `n` cycles of this clock, computed in one shot (not
    /// `n * period()`) so rounding error does not accumulate.
    #[must_use]
    pub fn cycles(self, n: u64) -> SimDuration {
        let ps = (u128::from(n) * PS_PER_S).div_ceil(u128::from(self.0));
        assert!(
            ps <= u128::from(u64::MAX),
            "Frequency::cycles: {n} cycles at {self} overflows the timeline"
        );
        SimDuration::from_ps(ps as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}GHz", self.0 / 1_000_000_000)
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

/// A transfer rate in bytes per second.
///
/// # Example
///
/// ```
/// use reach_sim::Bandwidth;
/// let ddr4_channel = Bandwidth::from_gbps(19);
/// let line = ddr4_channel.transfer_time(64);
/// assert!(line.as_ns_f64() < 4.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero; a zero-bandwidth link can never
    /// complete a transfer.
    #[must_use]
    pub fn from_bytes_per_sec(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "Bandwidth must be positive");
        Bandwidth(bytes_per_sec)
    }

    /// Creates a bandwidth from megabytes per second (decimal MB).
    ///
    /// # Panics
    ///
    /// Panics if `mb_per_sec` is zero or the bytes/s value overflows `u64`.
    #[must_use]
    pub fn from_mbps(mb_per_sec: u64) -> Self {
        Self::from_bytes_per_sec(mb_per_sec.checked_mul(1_000_000).unwrap_or_else(|| {
            panic!("Bandwidth::from_mbps: {mb_per_sec} MB/s overflows u64 bytes/s")
        }))
    }

    /// Creates a bandwidth from gigabytes per second (decimal GB).
    ///
    /// # Panics
    ///
    /// Panics if `gb_per_sec` is zero or the bytes/s value overflows `u64`.
    #[must_use]
    pub fn from_gbps(gb_per_sec: u64) -> Self {
        Self::from_bytes_per_sec(gb_per_sec.checked_mul(1_000_000_000).unwrap_or_else(|| {
            panic!("Bandwidth::from_gbps: {gb_per_sec} GB/s overflows u64 bytes/s")
        }))
    }

    /// Returns the rate in bytes per second.
    #[must_use]
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Returns the rate in (fractional) GB/s.
    #[must_use]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Serialization time for `bytes` at this rate, rounded up to the next
    /// picosecond (a transfer is never under-billed).
    #[must_use]
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        let ps = (u128::from(bytes) * PS_PER_S).div_ceil(u128::from(self.0));
        assert!(
            ps <= u128::from(u64::MAX),
            "Bandwidth::transfer_time: {bytes} bytes at {self} overflows the timeline"
        );
        SimDuration::from_ps(ps as u64)
    }

    /// Splits this rate evenly across `ways` consumers, rounding down; the
    /// result never exceeds the fair share.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or the share rounds to zero.
    #[must_use]
    pub fn share(self, ways: u64) -> Bandwidth {
        assert!(ways > 0, "Bandwidth::share: zero ways");
        let each = self.0 / ways;
        assert!(
            each > 0,
            "Bandwidth::share: {self} split {ways} ways rounds to zero"
        );
        Self::from_bytes_per_sec(each)
    }

    /// Scales the rate by a dimensionless efficiency factor in `(0, 1]`,
    /// e.g. PCIe protocol efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is outside `(0, 1]` or the result rounds to zero.
    #[must_use]
    pub fn derate(self, eff: f64) -> Bandwidth {
        assert!(
            eff > 0.0 && eff <= 1.0,
            "Bandwidth::derate: efficiency {eff} outside (0, 1]"
        );
        let derated = (self.0 as f64 * eff) as u64;
        assert!(
            derated > 0,
            "Bandwidth::derate: {self} at efficiency {eff} rounds to zero"
        );
        Self::from_bytes_per_sec(derated)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}GB/s", self.as_gbps_f64())
        } else {
            write!(f, "{:.1}MB/s", self.0 as f64 / 1e6)
        }
    }
}

/// A point-to-point link: fixed propagation latency plus serialization at a
/// [`Bandwidth`]. The timing resource behind inter-machine transfers — one
/// message of `bytes` costs `latency + bandwidth.transfer_time(bytes)`.
///
/// # Example
///
/// ```
/// use reach_sim::{Bandwidth, Link, SimDuration};
/// let rack = Link::new(SimDuration::from_us(2), Bandwidth::from_gbps(12));
/// assert!(rack.transfer_time(0) == SimDuration::from_us(2));
/// assert!(rack.transfer_time(12_000).as_us_f64() > 2.9);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Link {
    latency: SimDuration,
    bandwidth: Bandwidth,
}

impl Link {
    /// A link with the given propagation latency and serialization rate.
    #[must_use]
    pub fn new(latency: SimDuration, bandwidth: Bandwidth) -> Self {
        Link { latency, bandwidth }
    }

    /// One-way propagation latency (charged once per message).
    #[must_use]
    pub fn latency(self) -> SimDuration {
        self.latency
    }

    /// Serialization bandwidth.
    #[must_use]
    pub fn bandwidth(self) -> Bandwidth {
        self.bandwidth
    }

    /// End-to-end time for one message of `bytes`: propagation plus
    /// serialization (rounded up by [`Bandwidth::transfer_time`]).
    #[must_use]
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        self.latency + self.bandwidth.transfer_time(bytes)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}", self.latency, self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_common_clocks() {
        assert_eq!(Frequency::from_ghz(2).period().as_ps(), 500);
        assert_eq!(Frequency::from_ghz(1).period().as_ps(), 1_000);
        assert_eq!(Frequency::from_mhz(200).period().as_ps(), 5_000);
        // 273 MHz does not divide 1e12 exactly; period rounds up.
        assert_eq!(Frequency::from_mhz(273).period().as_ps(), 3_664);
    }

    #[test]
    fn bulk_cycles_do_not_accumulate_rounding() {
        let f = Frequency::from_mhz(273);
        // One million cycles at 273 MHz = 3.663003663...ms
        let d = f.cycles(1_000_000);
        let exact = 1e6 / 273e6;
        assert!((d.as_secs_f64() - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let bw = Bandwidth::from_gbps(12);
        let one = bw.transfer_time(1_000_000);
        let ten = bw.transfer_time(10_000_000);
        let ratio = ten.as_ps() as f64 / one.as_ps() as f64;
        assert!((ratio - 10.0).abs() < 1e-6);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 B/s = 333333333333.33 ps, must round up.
        let bw = Bandwidth::from_bytes_per_sec(3);
        assert_eq!(bw.transfer_time(1).as_ps(), 333_333_333_334);
    }

    #[test]
    fn share_and_derate() {
        let bw = Bandwidth::from_gbps(16);
        assert_eq!(bw.share(4).as_bytes_per_sec(), 4_000_000_000);
        assert_eq!(bw.derate(0.75).as_bytes_per_sec(), 12_000_000_000);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn derate_rejects_out_of_range() {
        let _ = Bandwidth::from_gbps(1).derate(1.5);
    }

    #[test]
    #[should_panic(expected = "Frequency::from_mhz: 18446744073710 MHz overflows")]
    fn from_mhz_names_the_overflowing_value() {
        let _ = Frequency::from_mhz(u64::MAX / 1_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Frequency::from_ghz: 18446744074 GHz overflows")]
    fn from_ghz_names_the_overflowing_value() {
        let _ = Frequency::from_ghz(u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Bandwidth::from_mbps: 18446744073710 MB/s overflows")]
    fn from_mbps_names_the_overflowing_value() {
        let _ = Bandwidth::from_mbps(u64::MAX / 1_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Bandwidth::from_gbps: 18446744074 GB/s overflows")]
    fn from_gbps_names_the_overflowing_value() {
        let _ = Bandwidth::from_gbps(u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "3.0MB/s split 4000000 ways rounds to zero")]
    fn share_names_the_rounded_to_zero_split() {
        let _ = Bandwidth::from_mbps(3).share(4_000_000);
    }

    #[test]
    #[should_panic(expected = "at efficiency 0.0000000001 rounds to zero")]
    fn derate_names_the_rounded_to_zero_result() {
        let _ = Bandwidth::from_bytes_per_sec(100).derate(1e-10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Frequency::from_ghz(2).to_string(), "2GHz");
        assert_eq!(Frequency::from_mhz(150).to_string(), "150MHz");
        assert_eq!(Bandwidth::from_gbps(12).to_string(), "12.0GB/s");
        assert_eq!(Bandwidth::from_mbps(500).to_string(), "500.0MB/s");
    }

    #[test]
    fn zero_transfer_is_instant() {
        assert_eq!(Bandwidth::from_gbps(1).transfer_time(0), SimDuration::ZERO);
        assert_eq!(Frequency::from_ghz(1).cycles(0), SimDuration::ZERO);
    }

    #[test]
    fn link_charges_latency_plus_serialization() {
        let link = Link::new(SimDuration::from_us(2), Bandwidth::from_gbps(10));
        // An empty message still pays propagation.
        assert_eq!(link.transfer_time(0), SimDuration::from_us(2));
        // 10 KB at 10 GB/s = 1 us of serialization on top.
        assert_eq!(link.transfer_time(10_000), SimDuration::from_us(3));
        assert_eq!(link.latency(), SimDuration::from_us(2));
        assert_eq!(link.bandwidth(), Bandwidth::from_gbps(10));
        assert_eq!(link.to_string(), "2.000us + 10.0GB/s");
    }
}
