//! A global string interner producing cheap, copyable [`Symbol`] handles.
//!
//! The simulator's hot path (task dispatch, DMA pricing, stage accounting)
//! used to key its maps by `String` stage labels and template names — every
//! event paid for a clone, a heap allocation and a string hash. Interning
//! turns those labels into `u32` handles: strings are hashed **once** when a
//! job is built, and the per-event path compares and hashes plain integers.
//!
//! Design notes:
//!
//! * The interner is a process-global table behind a `RwLock`. Reads (the
//!   overwhelmingly common case: resolving a symbol back to text at report
//!   time) take the shared lock; inserting a new string takes the exclusive
//!   lock with a double-check so concurrent interners agree on one id.
//! * Interned strings are leaked (`Box::leak`) so `resolve` can hand out
//!   `&'static str` without copying. The set of distinct labels in a run is
//!   tiny (stage names, template names, level slugs), so the leak is bounded
//!   and intentional.
//! * Symbol ids depend on interning order, which under the parallel scenario
//!   runner depends on thread interleaving. **Never order user-visible
//!   output by raw symbol id** — sort by the resolved string instead (see
//!   `Symbol::resolve`). Ids are stable *within* a process, which is all the
//!   per-event maps need.
//!
//! # Example
//!
//! ```
//! use reach_sim::Symbol;
//!
//! let a = Symbol::intern("gemm");
//! let b = Symbol::intern("gemm");
//! assert_eq!(a, b);
//! assert_eq!(a.resolve(), "gemm");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string handle: `Copy`, 4 bytes, integer compare/hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning the canonical handle for that text. Repeated
    /// calls with equal strings return equal symbols.
    #[must_use]
    pub fn intern(s: &str) -> Symbol {
        let lock = global();
        if let Some(&id) = lock.read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut g = lock.write().expect("interner poisoned");
        // Double-check: another thread may have inserted between the locks.
        if let Some(&id) = g.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(g.strings.len()).expect("interner overflow");
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text. O(1): one shared-lock acquisition and a vec index.
    #[must_use]
    pub fn resolve(self) -> &'static str {
        global().read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// The raw id. Only meaningful within this process; do not persist or
    /// sort user-visible output by it.
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.resolve())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.resolve())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_symbol() {
        let a = Symbol::intern("stage-a");
        let b = Symbol::intern("stage-a");
        let c = Symbol::intern("stage-b");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn resolve_round_trips() {
        let s = Symbol::intern("round-trip-check");
        assert_eq!(s.resolve(), "round-trip-check");
        assert_eq!(s.to_string(), "round-trip-check");
        assert_eq!(format!("{s:?}"), "Symbol(\"round-trip-check\")");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<Symbol> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| Symbol::intern("contended-label")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
