//! The deterministic event queue driving every simulation in the workspace.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: the timestamp, a tie-breaking sequence number and the
/// payload. Stored inverted so `BinaryHeap` (a max-heap) pops the earliest
/// event first.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, seq) sorts greater, so the heap pops it.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO ordering
/// among events scheduled for the same instant.
///
/// Determinism matters here: the experiment harness asserts byte-identical
/// reports across runs, and several GAM scheduling decisions are sensitive to
/// the order in which same-cycle completions are observed.
///
/// # Example
///
/// ```
/// use reach_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ps(10), "b");
/// q.push(SimTime::from_ps(10), "c");
/// q.push(SimTime::from_ps(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the simulation's
    /// current time).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time: scheduling into
    /// the past is always a model bug and silently reordering it would
    /// corrupt causality.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "EventQueue::push: scheduling into the past ({at:?} < now {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the current time to
    /// its timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), 3);
        q.push(SimTime::from_ps(10), 1);
        q.push(SimTime::from_ps(20), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ps(7), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<_> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ps(42), ());
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(42));
        assert_eq!(q.now(), SimTime::from_ps(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), ());
        q.pop();
        q.push(SimTime::from_ps(5), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "first");
        q.pop();
        q.push(SimTime::from_ps(10), "again");
        assert_eq!(q.pop().unwrap().1, "again");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "c");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        q.push(SimTime::from_ps(20), "d");
        q.push(SimTime::from_ps(15), "b");
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, ["b", "c", "d"]);
    }
}
