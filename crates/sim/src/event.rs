//! The deterministic event queue driving every simulation in the workspace.

use crate::calendar::Calendar;
use crate::time::SimTime;

/// A priority queue of timestamped events with deterministic FIFO ordering
/// among events scheduled for the same instant.
///
/// Determinism matters here: the experiment harness asserts byte-identical
/// reports across runs, and several GAM scheduling decisions are sensitive to
/// the order in which same-cycle completions are observed.
///
/// Internally this is a calendar (bucketed) queue — see
/// [`crate::calendar`] — giving O(1) amortized push/pop for the
/// near-monotonic timestamp streams a simulation produces, instead of the
/// `O(log n)` sift of a binary heap. The pop order is defined purely by
/// the `(time, sequence)` pair, so the switch of backing structure is
/// unobservable.
///
/// # Example
///
/// ```
/// use reach_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ps(10), "b");
/// q.push(SimTime::from_ps(10), "c");
/// q.push(SimTime::from_ps(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    cal: Calendar<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            cal: Calendar::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so a
    /// simulation sized from its blueprint never reallocates while running.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            cal: Calendar::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserves capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.cal.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cal.capacity()
    }

    /// The timestamp of the most recently popped event (the simulation's
    /// current time).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time: scheduling into
    /// the past is always a model bug and silently reordering it would
    /// corrupt causality.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "EventQueue::push: scheduling into the past ({at:?} < now {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.cal.push(at.as_ps(), seq, payload);
    }

    /// Schedules `payload` at `delta` after the current simulation time.
    /// Shorthand for `push(self.now() + delta, payload)`.
    pub fn push_in(&mut self, delta: crate::time::SimDuration, payload: E) {
        self.push(self.now + delta, payload);
    }

    /// Removes and returns the earliest event, advancing the current time to
    /// its timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _seq, payload) = self.cal.pop()?;
        let at = SimTime::from_ps(at);
        self.now = at;
        Some((at, payload))
    }

    /// Drains **every event scheduled for the earliest pending instant** into
    /// `out` (cleared first), preserving FIFO order, and returns that
    /// instant. Returns `None` when the queue is empty.
    ///
    /// This lets a scheduling round reuse one scratch `Vec` instead of
    /// interleaving `peek`/`pop` calls. It is order-exact with repeated
    /// [`pop`](Self::pop): events pushed *while the batch is processed* carry
    /// larger sequence numbers than anything already queued, so they can
    /// never have belonged to the batch being drained.
    pub fn pop_batch_into(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let (at, _seq, payload) = self.cal.pop()?;
        self.now = SimTime::from_ps(at);
        out.push(payload);
        self.cal.drain_instant_into(at, out);
        Some(self.now)
    }

    /// Timestamp of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cal.peek().map(|(at, _)| SimTime::from_ps(at))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cal.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cal.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.cal.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), 3);
        q.push(SimTime::from_ps(10), 1);
        q.push(SimTime::from_ps(20), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ps(7), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<_> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ps(42), ());
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(42));
        assert_eq!(q.now(), SimTime::from_ps(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), ());
        q.pop();
        q.push(SimTime::from_ps(5), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "first");
        q.pop();
        q.push(SimTime::from_ps(10), "again");
        assert_eq!(q.pop().unwrap().1, "again");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn push_in_schedules_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "a");
        q.pop();
        q.push_in(crate::time::SimDuration::from_ps(5), "b");
        let (t, ev) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(15));
        assert_eq!(ev, "b");
    }

    #[test]
    fn with_capacity_presizes() {
        let q: EventQueue<u32> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let mut q = EventQueue::<u32>::new();
        q.reserve(32);
        assert!(q.capacity() >= 32);
    }

    #[test]
    fn pop_batch_drains_one_instant_in_fifo_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), 1);
        q.push(SimTime::from_ps(10), 2);
        q.push(SimTime::from_ps(20), 4);
        q.push(SimTime::from_ps(10), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), Some(SimTime::from_ps(10)));
        assert_eq!(batch, [1, 2, 3]);
        assert_eq!(q.now(), SimTime::from_ps(10));
        assert_eq!(q.pop_batch_into(&mut batch), Some(SimTime::from_ps(20)));
        assert_eq!(batch, [4]);
        assert_eq!(q.pop_batch_into(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_batch_matches_repeated_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let times = [7u64, 3, 7, 9, 3, 3, 9, 1];
        for (i, t) in times.iter().enumerate() {
            a.push(SimTime::from_ps(*t), i);
            b.push(SimTime::from_ps(*t), i);
        }
        let mut via_pop = Vec::new();
        while let Some((t, e)) = a.pop() {
            via_pop.push((t, e));
        }
        let mut via_batch = Vec::new();
        let mut scratch = Vec::new();
        while let Some(t) = b.pop_batch_into(&mut scratch) {
            for e in scratch.drain(..) {
                via_batch.push((t, e));
            }
        }
        assert_eq!(via_pop, via_batch);
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "c");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        q.push(SimTime::from_ps(20), "d");
        q.push(SimTime::from_ps(15), "b");
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, ["b", "c", "d"]);
    }
}
