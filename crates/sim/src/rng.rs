//! Deterministic randomness plumbing.
//!
//! Every stochastic element in the workspace (synthetic datasets, SSD
//! latency jitter, workload arrival patterns) draws from an explicitly
//! seeded [`rand::rngs::StdRng`] created through this module, so any
//! experiment can be replayed bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seed used by every experiment unless overridden: chosen once,
/// recorded here, never changed, so published numbers stay reproducible.
pub const DEFAULT_SEED: u64 = 0x5EAC_4001;

/// Creates the workspace's standard deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = reach_sim::rng::seeded(7);
/// let mut b = reach_sim::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Used when one experiment needs several uncorrelated streams (e.g. dataset
/// synthesis vs. latency jitter) that must each stay stable when the other
/// changes its number of draws.
#[must_use]
pub fn derived(seed: u64, stream: &str) -> StdRng {
    // FNV-1a over the stream label, mixed into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    seeded(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_reproducible() {
        let xs: Vec<u32> = seeded(42)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u32> = seeded(42)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(seeded(1).gen::<u64>(), seeded(2).gen::<u64>());
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let a1 = derived(7, "dataset").gen::<u64>();
        let a2 = derived(7, "dataset").gen::<u64>();
        let b = derived(7, "jitter").gen::<u64>();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
