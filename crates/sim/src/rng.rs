//! Deterministic randomness plumbing.
//!
//! Every stochastic element in the workspace (synthetic datasets, SSD
//! latency jitter, workload arrival patterns) draws from an explicitly
//! seeded [`rand::rngs::StdRng`] created through this module, so any
//! experiment can be replayed bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The seed used by every experiment unless overridden: chosen once,
/// recorded here, never changed, so published numbers stay reproducible.
pub const DEFAULT_SEED: u64 = 0x5EAC_4001;

/// The process-wide seed scenarios pick up by default. Starts at
/// [`DEFAULT_SEED`]; binaries override it once, at startup, from `--seed N`.
static SESSION_SEED: AtomicU64 = AtomicU64::new(DEFAULT_SEED);

/// The seed new scenarios should use: [`DEFAULT_SEED`] unless the process
/// overrode it with [`set_session_seed`].
#[must_use]
pub fn session_seed() -> u64 {
    SESSION_SEED.load(Ordering::Relaxed)
}

/// Overrides the process-wide session seed (the `--seed N` flag).
///
/// Call once, before any scenario is constructed: scenarios capture the
/// session seed at build time and cover it in their config fingerprints, so
/// flipping it mid-run would split a batch across two seeds.
pub fn set_session_seed(seed: u64) {
    SESSION_SEED.store(seed, Ordering::Relaxed);
}

/// Creates the workspace's standard deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = reach_sim::rng::seeded(7);
/// let mut b = reach_sim::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Used when one experiment needs several uncorrelated streams (e.g. dataset
/// synthesis vs. latency jitter) that must each stay stable when the other
/// changes its number of draws.
#[must_use]
pub fn derived(seed: u64, stream: &str) -> StdRng {
    // FNV-1a over the stream label, mixed into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    seeded(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_reproducible() {
        let xs: Vec<u32> = seeded(42)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u32> = seeded(42)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(seeded(1).gen::<u64>(), seeded(2).gen::<u64>());
    }

    #[test]
    fn session_seed_defaults_and_overrides() {
        // The only test that touches the session seed, so there is no
        // cross-test race; restore the default before returning.
        assert_eq!(session_seed(), DEFAULT_SEED);
        set_session_seed(7);
        assert_eq!(session_seed(), 7);
        set_session_seed(DEFAULT_SEED);
        assert_eq!(session_seed(), DEFAULT_SEED);
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let a1 = derived(7, "dataset").gen::<u64>();
        let a2 = derived(7, "dataset").gen::<u64>();
        let b = derived(7, "jitter").gen::<u64>();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
