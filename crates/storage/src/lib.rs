//! # reach-storage — storage-hierarchy timing models
//!
//! The IO substrate of the ReACH simulator:
//!
//! * [`pcie`] — PCIe links (generation x lanes x protocol efficiency) and
//!   the host IO switch. The paper's motivating bandwidth gap lives here:
//!   a host PCIe Gen3 x16 is 16 GB/s on paper but ~12 GB/s effective through
//!   the IO software stack, shared by *all* SSDs, while each SSD's internal
//!   flash array can sustain ~12 GB/s on its own.
//! * [`ssd`] — an NVMe SSD: parallel flash channels behind a command queue,
//!   page-granular reads with realistic first-access latency, and separate
//!   *host-path* (through the shared switch) and *device-path* (from the
//!   attached near-storage accelerator) entry points.
//! * [`ftl`] — a page-mapping flash translation layer with greedy garbage
//!   collection, for write-path and write-amplification studies.
//! * [`near_storage`] — the near-storage accelerator carrier: a private
//!   DRAM buffer that caches accelerator parameters to limit disk traffic,
//!   plus the pass-through logic that lets ordinary host IO bypass the
//!   accelerator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ftl;
pub mod near_storage;
pub mod pcie;
pub mod ssd;

pub use ftl::{Ftl, FtlConfig};
pub use near_storage::{BufferOutcome, NearStorageDevice, NearStorageDeviceConfig};
pub use pcie::{PcieGen, PcieLink, PcieSwitch};
pub use ssd::{Ssd, SsdConfig};
