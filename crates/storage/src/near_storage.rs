//! The near-storage accelerator carrier device.
//!
//! Figure 4 of the paper: an embedded FPGA with a host interface, an
//! FPGA-SSD interface over a local PCIe link, a private DRAM buffer that
//! caches accelerator parameters "to limit disk accesses and exploit the
//! parameters' reuse ratio", and pass-through logic that forwards ordinary
//! host IO to the SSD with minimal overhead.
//!
//! The accelerator itself (kernel timing, power) lives in `reach-accel`;
//! this module models the *data paths* the accelerator uses.

use crate::pcie::{PcieGen, PcieLink};
use crate::ssd::{Ssd, SsdConfig};
use reach_sim::{Bandwidth, BandwidthResource, Reservation, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Configuration of a near-storage device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NearStorageDeviceConfig {
    /// The attached SSD.
    pub ssd: SsdConfig,
    /// Private DRAM buffer capacity (1 GB in Table II).
    pub buffer_capacity: u64,
    /// Private DRAM buffer bandwidth.
    pub buffer_bandwidth: Bandwidth,
    /// Effective FPGA-SSD link bandwidth (12 GB/s in Table II).
    pub device_link: Bandwidth,
}

impl NearStorageDeviceConfig {
    /// Table II: Zynq UltraScale+ carrier with 1 GB DRAM and a 12 GB/s
    /// effective link to the NVMe SSD.
    #[must_use]
    pub fn paper_default() -> Self {
        NearStorageDeviceConfig {
            ssd: SsdConfig::nytro_class(),
            buffer_capacity: 1 << 30,
            buffer_bandwidth: Bandwidth::from_gbps(19),
            device_link: Bandwidth::from_gbps(12),
        }
    }
}

/// Where a device-side read was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferOutcome {
    /// The range was resident in the private DRAM buffer.
    BufferHit,
    /// The range came from flash over the device link (and was not cached).
    Flash,
}

/// Statistics of the near-storage data paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NearStorageStats {
    /// Device-side bytes served from the DRAM buffer.
    pub buffer_bytes: u64,
    /// Device-side bytes read from flash.
    pub flash_bytes: u64,
    /// Host IO bytes forwarded by the pass-through logic.
    pub passthrough_bytes: u64,
}

/// A near-storage accelerator carrier: SSD + private DRAM buffer + links.
///
/// # Example
///
/// ```
/// use reach_storage::{NearStorageDevice, NearStorageDeviceConfig, BufferOutcome};
/// use reach_sim::SimTime;
///
/// let mut dev = NearStorageDevice::new(NearStorageDeviceConfig::paper_default());
/// // Pin the kernel parameters into the private buffer…
/// dev.pin(0, 16 << 20).unwrap();
/// // …then device-side reads of that range hit DRAM instead of flash.
/// let (r, outcome) = dev.device_read(SimTime::ZERO, 0, 1 << 20);
/// assert_eq!(outcome, BufferOutcome::BufferHit);
/// assert!(r.complete.as_us_f64() < 70.0); // faster than a flash read
/// ```
#[derive(Debug)]
pub struct NearStorageDevice {
    config: NearStorageDeviceConfig,
    ssd: Ssd,
    device_link: PcieLink,
    buffer: BandwidthResource,
    /// Pinned ranges: start -> end (non-overlapping, coalesced).
    pinned: BTreeMap<u64, u64>,
    pinned_bytes: u64,
    stats: NearStorageStats,
}

impl NearStorageDevice {
    /// Creates an idle device with an empty buffer.
    #[must_use]
    pub fn new(config: NearStorageDeviceConfig) -> Self {
        // Model the device link as a Gen3 x16 derated to the configured
        // effective bandwidth.
        let raw_x16 = PcieGen::Gen3.lane_bytes_per_sec() * 16;
        let eff = (config.device_link.as_bytes_per_sec() as f64 / raw_x16 as f64).min(1.0);
        NearStorageDevice {
            ssd: Ssd::new(config.ssd),
            device_link: PcieLink::new(PcieGen::Gen3, 16, eff),
            buffer: BandwidthResource::new(config.buffer_bandwidth, SimDuration::from_ns(100)),
            pinned: BTreeMap::new(),
            pinned_bytes: 0,
            stats: NearStorageStats::default(),
            config,
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &NearStorageDeviceConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &NearStorageStats {
        &self.stats
    }

    /// The attached SSD (for host-path IO and stats).
    #[must_use]
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Bytes currently pinned in the private buffer.
    #[must_use]
    pub fn pinned_bytes(&self) -> u64 {
        self.pinned_bytes
    }

    /// Pins `[addr, addr+len)` of the SSD's address space into the private
    /// DRAM buffer (parameter caching). Returns an error message if the
    /// buffer would overflow.
    ///
    /// # Errors
    ///
    /// Fails when the pinned working set would exceed the buffer capacity.
    pub fn pin(&mut self, addr: u64, len: u64) -> Result<(), String> {
        if self.pinned_bytes + len > self.config.buffer_capacity {
            return Err(format!(
                "near-storage buffer overflow: {} + {} > {}",
                self.pinned_bytes, len, self.config.buffer_capacity
            ));
        }
        self.pinned.insert(addr, addr + len);
        self.pinned_bytes += len;
        Ok(())
    }

    /// Releases every pinned range (e.g. on kernel reconfiguration).
    pub fn unpin_all(&mut self) {
        self.pinned.clear();
        self.pinned_bytes = 0;
    }

    fn is_pinned(&self, addr: u64, len: u64) -> bool {
        self.pinned
            .range(..=addr)
            .next_back()
            .is_some_and(|(_, &end)| addr + len <= end)
    }

    /// A device-side read issued by the attached accelerator: served from the
    /// private buffer when pinned, otherwise from flash across the device
    /// link.
    pub fn device_read(
        &mut self,
        now: SimTime,
        addr: u64,
        bytes: u64,
    ) -> (Reservation, BufferOutcome) {
        if self.is_pinned(addr, bytes) {
            self.stats.buffer_bytes += bytes;
            (self.buffer.transfer(now, bytes), BufferOutcome::BufferHit)
        } else {
            self.stats.flash_bytes += bytes;
            let flash = self.ssd.read(now, addr, bytes);
            // The PCIe hop is pipelined with the flash stream: the link
            // starts forwarding as soon as the first page arrives and cannot
            // finish before the flash array delivers the last byte.
            let first_data = flash.start + self.config.ssd.read_latency;
            let link = self.device_link.transfer(first_data, bytes);
            let complete = link.complete.max(flash.complete);
            (
                Reservation {
                    start: flash.start,
                    ready: complete,
                    complete,
                },
                BufferOutcome::Flash,
            )
        }
    }

    /// A device-side write from the accelerator to flash.
    pub fn device_write(&mut self, now: SimTime, addr: u64, bytes: u64) -> Reservation {
        let link = self.device_link.transfer(now, bytes);
        self.stats.flash_bytes += bytes;
        self.ssd.write(link.complete, addr, bytes)
    }

    /// Host IO forwarded through the pass-through logic (the near-storage
    /// module adds only its link hop; the host switch is billed by the
    /// caller, which owns the shared upstream port).
    pub fn passthrough_read(&mut self, now: SimTime, addr: u64, bytes: u64) -> Reservation {
        self.stats.passthrough_bytes += bytes;
        let flash = self.ssd.read(now, addr, bytes);
        self.device_link.transfer(flash.complete, bytes)
    }

    /// Occupied time of the device link (energy accounting).
    #[must_use]
    pub fn device_link_busy(&self) -> SimDuration {
        self.device_link.busy_time()
    }

    /// Bytes that crossed the device link.
    #[must_use]
    pub fn device_link_bytes(&self) -> u64 {
        self.device_link.bytes_transferred()
    }

    /// Occupied time of the private DRAM buffer port.
    #[must_use]
    pub fn buffer_busy(&self) -> SimDuration {
        self.buffer.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NearStorageDevice {
        NearStorageDevice::new(NearStorageDeviceConfig::paper_default())
    }

    #[test]
    fn pinned_reads_hit_buffer() {
        let mut d = dev();
        d.pin(0, 32 << 20).unwrap();
        let (r, out) = d.device_read(SimTime::ZERO, 1 << 20, 1 << 20);
        assert_eq!(out, BufferOutcome::BufferHit);
        assert!(r.complete.as_us_f64() < 70.0);
        assert_eq!(d.stats().buffer_bytes, 1 << 20);
        assert_eq!(d.stats().flash_bytes, 0);
    }

    #[test]
    fn unpinned_reads_go_to_flash() {
        let mut d = dev();
        let (r, out) = d.device_read(SimTime::ZERO, 0, 1 << 20);
        assert_eq!(out, BufferOutcome::Flash);
        assert!(r.complete.as_us_f64() >= 70.0);
        assert_eq!(d.stats().flash_bytes, 1 << 20);
    }

    #[test]
    fn read_straddling_pin_boundary_misses() {
        let mut d = dev();
        d.pin(0, 1 << 20).unwrap();
        let (_, out) = d.device_read(SimTime::ZERO, (1 << 20) - 512, 1024);
        assert_eq!(out, BufferOutcome::Flash);
    }

    #[test]
    fn pin_respects_capacity() {
        let mut d = dev();
        assert!(d.pin(0, 1 << 30).is_ok());
        assert!(d.pin(1 << 30, 1).is_err());
        d.unpin_all();
        assert!(d.pin(0, 1 << 30).is_ok());
        assert_eq!(d.pinned_bytes(), 1 << 30);
    }

    #[test]
    fn device_path_beats_host_latency_for_streaming() {
        // Stream 1 GiB: device path is bounded by the 12 GB/s device link,
        // i.e. ~89 ms; the same data over a 12 GB/s *shared* host port takes
        // the same time alone but halves when two devices compete — that
        // contention case is exercised at the machine level in reach-core.
        let mut d = dev();
        let (r, _) = d.device_read(SimTime::ZERO, 0, 1 << 30);
        let secs = (r.complete - SimTime::ZERO).as_secs_f64();
        assert!(secs < 0.12, "device-path stream took {secs}s");
    }

    #[test]
    fn passthrough_counts_separately() {
        let mut d = dev();
        d.passthrough_read(SimTime::ZERO, 0, 4096);
        assert_eq!(d.stats().passthrough_bytes, 4096);
        assert_eq!(d.stats().flash_bytes, 0);
        assert_eq!(d.ssd().stats().read_cmds, 1);
    }

    #[test]
    fn device_write_reaches_flash() {
        let mut d = dev();
        let r = d.device_write(SimTime::ZERO, 0, 8192);
        assert!(r.complete.as_us_f64() >= 100.0);
        assert_eq!(d.ssd().stats().bytes_written, 8192);
    }

    #[test]
    fn link_stats_accumulate() {
        let mut d = dev();
        d.device_read(SimTime::ZERO, 0, 1 << 20);
        assert_eq!(d.device_link_bytes(), 1 << 20);
        assert!(d.device_link_busy() > SimDuration::ZERO);
    }
}
