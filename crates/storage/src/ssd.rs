//! NVMe SSD model: parallel flash channels behind a command interface.
//!
//! The model captures the two properties the paper's near-storage argument
//! rests on:
//!
//! 1. the *internal* flash array bandwidth (channels x per-channel rate) is
//!    comparable to or higher than one device's external link, and
//! 2. it aggregates linearly across devices — which the shared host IO
//!    interface cannot exploit, but per-device accelerators can.

use reach_sim::{Bandwidth, MultiResource, Reservation, SimDuration, SimTime};

/// SSD geometry and timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsdConfig {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Number of independent flash channels.
    pub channels: usize,
    /// Sustained bandwidth of one channel.
    pub channel_bandwidth: Bandwidth,
    /// Flash page size (minimum read granularity).
    pub page_bytes: u64,
    /// Command latency from submission to first data (FTL + flash read).
    pub read_latency: SimDuration,
    /// Additional program latency for writes.
    pub write_latency: SimDuration,
    /// Latency jitter in percent: each command's latency is scaled by a
    /// deterministic pseudo-random factor in `[1, 1 + jitter/100]`,
    /// modelling FTL interference and flash-die variation. 0 disables it.
    pub latency_jitter_pct: u8,
}

impl SsdConfig {
    /// An enterprise NVMe drive of the Seagate Nytro class the paper cites:
    /// 8 channels x 1.6 GB/s (12.8 GB/s internal), 4 KiB pages, ~70 us read
    /// latency.
    #[must_use]
    pub fn nytro_class() -> Self {
        SsdConfig {
            capacity: 4 << 40,
            channels: 8,
            channel_bandwidth: Bandwidth::from_mbps(1_600),
            page_bytes: 4 << 10,
            read_latency: SimDuration::from_us(70),
            write_latency: SimDuration::from_us(100),
            latency_jitter_pct: 0,
        }
    }

    /// The same drive with `pct` percent of deterministic latency jitter.
    #[must_use]
    pub fn with_jitter(mut self, pct: u8) -> Self {
        self.latency_jitter_pct = pct;
        self
    }

    /// Aggregate internal bandwidth across all channels.
    #[must_use]
    pub fn internal_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.channel_bandwidth.as_bytes_per_sec() * self.channels as u64,
        )
    }
}

/// Per-drive statistics for the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SsdStats {
    /// Bytes read from flash.
    pub bytes_read: u64,
    /// Bytes written to flash.
    pub bytes_written: u64,
    /// Read commands served.
    pub read_cmds: u64,
    /// Write commands served.
    pub write_cmds: u64,
}

/// One NVMe SSD.
///
/// # Example
///
/// ```
/// use reach_storage::{Ssd, SsdConfig};
/// use reach_sim::SimTime;
///
/// let mut ssd = Ssd::new(SsdConfig::nytro_class());
/// let r = ssd.read(SimTime::ZERO, 0, 1 << 20);
/// assert!(r.complete.as_us_f64() >= 70.0); // at least the command latency
/// ```
#[derive(Debug)]
pub struct Ssd {
    config: SsdConfig,
    flash: MultiResource,
    stats: SsdStats,
    /// xorshift state for deterministic per-command jitter.
    jitter_state: u64,
}

impl Ssd {
    /// Creates an idle drive.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (no channels or zero-size page).
    #[must_use]
    pub fn new(config: SsdConfig) -> Self {
        assert!(config.channels > 0, "Ssd: need flash channels");
        assert!(config.page_bytes > 0, "Ssd: zero page size");
        Ssd {
            flash: MultiResource::new(config.channels),
            config,
            stats: SsdStats::default(),
            jitter_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Applies the configured jitter to a base latency, advancing the
    /// deterministic jitter stream.
    fn jittered(&mut self, base: SimDuration) -> SimDuration {
        if self.config.latency_jitter_pct == 0 {
            return base;
        }
        // xorshift64*.
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        let draw = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) % 101; // 0..=100
        let extra =
            base.as_ps() as u128 * u128::from(self.config.latency_jitter_pct) * draw as u128
                / 10_000;
        base + SimDuration::from_ps(extra as u64)
    }

    /// The drive configuration.
    #[must_use]
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    fn io(
        &mut self,
        now: SimTime,
        addr: u64,
        bytes: u64,
        latency: SimDuration,
        write: bool,
    ) -> Reservation {
        assert!(bytes > 0, "Ssd: empty IO");
        assert!(
            addr.checked_add(bytes)
                .is_some_and(|end| end <= self.config.capacity),
            "Ssd: IO beyond capacity"
        );
        // Round to page granularity: a 1-byte read still fetches a page.
        let first_page = addr / self.config.page_bytes;
        let last_page = (addr + bytes).div_ceil(self.config.page_bytes);
        let pages = last_page - first_page;
        let page_time = self
            .config
            .channel_bandwidth
            .transfer_time(self.config.page_bytes);

        // Stripe pages round-robin over the channels; each page occupies its
        // channel for one page transfer time. All of a channel's pages are
        // requested at the same `now`, so its whole share collapses into one
        // batched reservation: channel `(first_page + i) % C` serves page
        // `i`, `i + C`, `i + 2C`, ... — `pages / C` each, plus one more for
        // the first `pages % C` channels in stripe order.
        let channels = self.config.channels as u64;
        let base = pages / channels;
        let rem = pages % channels;
        let mut complete = now;
        let mut start = SimTime::MAX;
        for i in 0..channels.min(pages) {
            let ch = ((first_page + i) % channels) as usize;
            let share = base + u64::from(i < rem);
            let r = self.flash.reserve_many_on(ch, now, page_time, share);
            start = start.min(r.start);
            complete = complete.max(r.ready);
        }
        // The command latency covers FTL lookup and the first flash read; it
        // overlaps the striped transfer of the remaining pages.
        let complete = complete.max(now + latency);

        let moved = pages * self.config.page_bytes;
        if write {
            self.stats.bytes_written += moved;
            self.stats.write_cmds += 1;
        } else {
            self.stats.bytes_read += moved;
            self.stats.read_cmds += 1;
        }
        Reservation {
            start: if start == SimTime::MAX { now } else { start },
            ready: complete,
            complete,
        }
    }

    /// Reads `bytes` starting at `addr`. The reservation's `complete` is when
    /// the last byte is available at the drive's edge; link time to wherever
    /// the data goes (host switch or device accelerator) is billed by the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity or `bytes` is zero.
    pub fn read(&mut self, now: SimTime, addr: u64, bytes: u64) -> Reservation {
        let lat = self.jittered(self.config.read_latency);
        self.io(now, addr, bytes, lat, false)
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity or `bytes` is zero.
    pub fn write(&mut self, now: SimTime, addr: u64, bytes: u64) -> Reservation {
        let lat = self.jittered(self.config.write_latency);
        self.io(now, addr, bytes, lat, true)
    }

    /// Total time the flash channels were busy, summed over channels.
    #[must_use]
    pub fn flash_busy_time(&self) -> SimDuration {
        self.flash.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> Ssd {
        Ssd::new(SsdConfig::nytro_class())
    }

    #[test]
    fn small_read_pays_command_latency() {
        let mut s = ssd();
        let r = s.read(SimTime::ZERO, 0, 64);
        assert_eq!(r.complete, SimTime::ZERO + SimDuration::from_us(70));
        // Page rounding: 64 bytes still reads one 4 KiB page.
        assert_eq!(s.stats().bytes_read, 4 << 10);
    }

    #[test]
    fn large_read_approaches_internal_bandwidth() {
        let mut s = ssd();
        let bytes: u64 = 1 << 30;
        let r = s.read(SimTime::ZERO, 0, bytes);
        let secs = (r.complete - SimTime::ZERO).as_secs_f64();
        let achieved = bytes as f64 / secs;
        let internal = s.config().internal_bandwidth().as_bytes_per_sec() as f64;
        assert!(
            achieved > 0.9 * internal,
            "achieved {achieved:.3e} vs {internal:.3e}"
        );
        assert!(achieved <= internal * 1.001);
    }

    #[test]
    fn unaligned_read_rounds_to_pages() {
        let mut s = ssd();
        // Crossing one page boundary with 2 bytes reads 2 pages.
        s.read(SimTime::ZERO, 4095, 2);
        assert_eq!(s.stats().bytes_read, 2 * 4096);
    }

    #[test]
    fn channels_parallelize_pages() {
        let mut s = ssd();
        // 8 pages across 8 channels: all transfer in parallel.
        let r8 = s.read(SimTime::ZERO, 0, 8 * 4096);
        let mut s2 = ssd();
        let r1 = s2.read(SimTime::ZERO, 0, 4096);
        // Both bounded by command latency here.
        assert_eq!(r8.complete, r1.complete);
    }

    #[test]
    fn sequential_commands_queue_on_channels() {
        let mut s = ssd();
        let big: u64 = 256 << 20;
        let a = s.read(SimTime::ZERO, 0, big);
        let b = s.read(SimTime::ZERO, big, big);
        // Second command finishes roughly twice as late as the first.
        let ratio = (b.complete.as_ps()) as f64 / (a.complete.as_ps()) as f64;
        assert!(ratio > 1.8, "flash contention expected, ratio {ratio}");
    }

    #[test]
    fn writes_tracked_separately() {
        let mut s = ssd();
        s.write(SimTime::ZERO, 0, 4096);
        assert_eq!(s.stats().write_cmds, 1);
        assert_eq!(s.stats().bytes_written, 4096);
        assert_eq!(s.stats().bytes_read, 0);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn read_past_end_rejected() {
        let mut s = ssd();
        let cap = s.config().capacity;
        s.read(SimTime::ZERO, cap - 100, 200);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let cfg = SsdConfig::nytro_class().with_jitter(30);
        let run = || {
            let mut s = Ssd::new(cfg);
            (0..50)
                .map(|i| s.read(SimTime::ZERO, i * 4096, 64).complete.as_ps())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "jitter must be deterministic");
        let base = SsdConfig::nytro_class().read_latency.as_ps();
        assert!(
            a.iter().all(|&t| t >= base),
            "jitter never shortens latency"
        );
        assert!(
            a.iter().all(|&t| t <= base * 13 / 10 + 1),
            "jitter bounded at +30%"
        );
        // It actually varies.
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 10);
    }

    #[test]
    fn zero_jitter_is_exact() {
        let mut s = ssd();
        let r = s.read(SimTime::ZERO, 0, 64);
        assert_eq!(r.complete, SimTime::ZERO + SimDuration::from_us(70));
    }

    #[test]
    fn internal_bandwidth_matches_config() {
        let c = SsdConfig::nytro_class();
        assert_eq!(c.internal_bandwidth().as_bytes_per_sec(), 12_800_000_000);
    }
}
