//! A page-mapping flash translation layer.
//!
//! The near-storage accelerator of the paper sits behind an SSD whose
//! firmware (Figure 4: "NVM Ctrl" channels + eCPU + SRAM) performs logical
//! to physical translation and garbage collection. Reads in the CBIR
//! pipeline dominate, but the write path matters for database updates and
//! for any workload the hierarchy hosts — and write amplification is the
//! quantity that couples host behaviour to flash wear and bandwidth.
//!
//! The model: a log-structured, page-mapped FTL with greedy (min-valid)
//! victim selection and configurable over-provisioning.

use std::collections::VecDeque;

/// FTL geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtlConfig {
    /// Logical pages exposed to the host.
    pub logical_pages: u64,
    /// Pages per erase block.
    pub pages_per_block: u64,
    /// Over-provisioning in percent of logical capacity (enterprise drives
    /// run 7–28%).
    pub overprovision_pct: u64,
    /// Blocks the garbage collector keeps free; GC triggers below this.
    pub gc_reserve_blocks: u64,
}

impl FtlConfig {
    /// A small, test-friendly geometry.
    #[must_use]
    pub fn small() -> Self {
        FtlConfig {
            logical_pages: 4_096,
            pages_per_block: 64,
            overprovision_pct: 12,
            gc_reserve_blocks: 2,
        }
    }

    /// Total physical blocks implied by the geometry.
    #[must_use]
    pub fn physical_blocks(&self) -> u64 {
        let physical_pages = self.logical_pages * (100 + self.overprovision_pct) / 100;
        physical_pages.div_ceil(self.pages_per_block)
    }
}

/// FTL statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Pages the host wrote.
    pub host_writes: u64,
    /// Pages physically programmed (host + GC relocation).
    pub flash_writes: u64,
    /// Valid pages relocated by the garbage collector.
    pub gc_moves: u64,
    /// Blocks erased.
    pub erases: u64,
}

impl FtlStats {
    /// Write amplification factor: physical / host page programs.
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.flash_writes as f64 / self.host_writes as f64
        }
    }
}

const UNMAPPED: u64 = u64::MAX;

#[derive(Clone, Debug)]
struct Block {
    /// Validity bitmap per page slot.
    valid: Vec<bool>,
    /// Logical page stored in each slot (for GC relocation).
    owner: Vec<u64>,
    /// Next free slot.
    cursor: u64,
    valid_count: u64,
}

impl Block {
    fn new(pages: u64) -> Self {
        Block {
            valid: vec![false; pages as usize],
            owner: vec![UNMAPPED; pages as usize],
            cursor: 0,
            valid_count: 0,
        }
    }

    fn is_full(&self, pages: u64) -> bool {
        self.cursor >= pages
    }
}

/// A page-mapping FTL.
///
/// # Example
///
/// ```
/// use reach_storage::ftl::{Ftl, FtlConfig};
///
/// let mut ftl = Ftl::new(FtlConfig::small());
/// for lpn in 0..1_000 {
///     ftl.write(lpn);
/// }
/// // Sequential first-write workload: no GC, amplification 1.0.
/// assert!((ftl.stats().write_amplification() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Ftl {
    config: FtlConfig,
    /// Logical page -> (block, slot), encoded as block * pages_per_block + slot.
    mapping: Vec<u64>,
    blocks: Vec<Block>,
    free: VecDeque<usize>,
    open: usize,
    stats: FtlStats,
}

impl Ftl {
    /// Creates a fresh (fully erased) FTL.
    ///
    /// # Panics
    ///
    /// Panics if the geometry leaves no spare blocks for garbage collection.
    #[must_use]
    pub fn new(config: FtlConfig) -> Self {
        let blocks_total = config.physical_blocks();
        assert!(
            blocks_total * config.pages_per_block
                >= config.logical_pages + config.gc_reserve_blocks * config.pages_per_block,
            "FtlConfig: not enough over-provisioning for the GC reserve"
        );
        let blocks: Vec<Block> = (0..blocks_total)
            .map(|_| Block::new(config.pages_per_block))
            .collect();
        let mut free: VecDeque<usize> = (0..blocks.len()).collect();
        let open = free.pop_front().expect("at least one block");
        Ftl {
            mapping: vec![UNMAPPED; config.logical_pages as usize],
            blocks,
            free,
            open,
            config,
            stats: FtlStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// `true` if `lpn` has ever been written.
    #[must_use]
    pub fn is_mapped(&self, lpn: u64) -> bool {
        self.mapping[lpn as usize] != UNMAPPED
    }

    /// Physical page address of `lpn`, if mapped.
    #[must_use]
    pub fn translate(&self, lpn: u64) -> Option<u64> {
        let p = self.mapping[lpn as usize];
        (p != UNMAPPED).then_some(p)
    }

    /// Host write of one logical page. Returns the number of GC relocations
    /// this write triggered (0 on the fast path).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn write(&mut self, lpn: u64) -> u64 {
        assert!(
            lpn < self.config.logical_pages,
            "Ftl::write: lpn {lpn} out of range"
        );
        self.stats.host_writes += 1;
        let moves_before = self.stats.gc_moves;
        self.program(lpn);
        self.maybe_gc();
        self.stats.gc_moves - moves_before
    }

    fn program(&mut self, lpn: u64) {
        // Invalidate the old copy.
        let old = self.mapping[lpn as usize];
        if old != UNMAPPED {
            let (b, s) = (
                (old / self.config.pages_per_block) as usize,
                (old % self.config.pages_per_block) as usize,
            );
            if self.blocks[b].valid[s] {
                self.blocks[b].valid[s] = false;
                self.blocks[b].valid_count -= 1;
            }
        }
        // Append to the open block.
        if self.blocks[self.open].is_full(self.config.pages_per_block) {
            self.open = self
                .free
                .pop_front()
                .expect("maybe_gc maintains free blocks");
        }
        let block = &mut self.blocks[self.open];
        let slot = block.cursor;
        block.valid[slot as usize] = true;
        block.owner[slot as usize] = lpn;
        block.cursor += 1;
        block.valid_count += 1;
        self.mapping[lpn as usize] = self.open as u64 * self.config.pages_per_block + slot;
        self.stats.flash_writes += 1;
    }

    fn maybe_gc(&mut self) {
        while (self.free.len() as u64) < self.config.gc_reserve_blocks {
            // Greedy victim: the full block with the fewest valid pages.
            let victim = self
                .blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| *i != self.open && b.is_full(self.config.pages_per_block))
                .min_by_key(|(_, b)| b.valid_count)
                .map(|(i, _)| i)
                .expect("a full block must exist when free space is low");
            // Relocate its valid pages.
            let owners: Vec<u64> = self.blocks[victim]
                .valid
                .iter()
                .zip(&self.blocks[victim].owner)
                .filter(|(v, _)| **v)
                .map(|(_, &o)| o)
                .collect();
            for lpn in owners {
                self.stats.gc_moves += 1;
                self.program(lpn);
            }
            // Erase.
            self.blocks[victim] = Block::new(self.config.pages_per_block);
            self.free.push_back(victim);
            self.stats.erases += 1;
        }
    }

    /// Sum of valid pages across all blocks (must equal mapped LPNs).
    #[must_use]
    pub fn valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use reach_sim::rng::seeded;

    #[test]
    fn first_fill_has_no_amplification() {
        let mut ftl = Ftl::new(FtlConfig::small());
        for lpn in 0..FtlConfig::small().logical_pages {
            ftl.write(lpn);
        }
        let s = *ftl.stats();
        assert_eq!(s.host_writes, 4_096);
        assert!(
            s.write_amplification() < 1.05,
            "WA {} on first fill",
            s.write_amplification()
        );
    }

    #[test]
    fn sequential_overwrite_keeps_wa_near_one() {
        let mut ftl = Ftl::new(FtlConfig::small());
        for round in 0..4 {
            for lpn in 0..FtlConfig::small().logical_pages {
                ftl.write(lpn);
            }
            let _ = round;
        }
        // Sequential overwrite invalidates whole blocks: GC finds empty
        // victims, so amplification stays close to 1.
        let wa = ftl.stats().write_amplification();
        assert!(wa < 1.2, "sequential WA {wa}");
    }

    #[test]
    fn random_overwrite_amplifies() {
        let mut ftl = Ftl::new(FtlConfig::small());
        let n = FtlConfig::small().logical_pages;
        for lpn in 0..n {
            ftl.write(lpn);
        }
        let mut rng = seeded(3);
        for _ in 0..(n * 4) {
            ftl.write(rng.gen_range(0..n));
        }
        let wa = ftl.stats().write_amplification();
        assert!(wa > 1.3, "random overwrite should amplify, WA {wa}");
        assert!(wa < 10.0, "WA {wa} implausibly high for 12% OP");
        assert!(ftl.stats().erases > 0);
    }

    #[test]
    fn mapping_stays_consistent_under_churn() {
        let mut ftl = Ftl::new(FtlConfig::small());
        let n = FtlConfig::small().logical_pages;
        let mut rng = seeded(9);
        let mut written = std::collections::BTreeSet::new();
        for _ in 0..(n * 3) {
            let lpn = rng.gen_range(0..n);
            ftl.write(lpn);
            written.insert(lpn);
        }
        // Every written LPN translates; valid-page count matches.
        for &lpn in &written {
            assert!(ftl.translate(lpn).is_some(), "lost lpn {lpn}");
        }
        assert_eq!(ftl.valid_pages(), written.len() as u64);
        // No two LPNs share a physical page.
        let mut seen = std::collections::BTreeSet::new();
        for &lpn in &written {
            assert!(
                seen.insert(ftl.translate(lpn).unwrap()),
                "aliased physical page"
            );
        }
    }

    #[test]
    fn more_overprovisioning_lowers_amplification() {
        let wa = |op: u64| {
            let cfg = FtlConfig {
                overprovision_pct: op,
                ..FtlConfig::small()
            };
            let mut ftl = Ftl::new(cfg);
            let n = cfg.logical_pages;
            for lpn in 0..n {
                ftl.write(lpn);
            }
            let mut rng = seeded(5);
            for _ in 0..(n * 4) {
                ftl.write(rng.gen_range(0..n));
            }
            ftl.stats().write_amplification()
        };
        let tight = wa(8);
        let roomy = wa(40);
        assert!(
            roomy < tight,
            "40% OP (WA {roomy:.2}) should beat 8% OP (WA {tight:.2})"
        );
    }

    #[test]
    fn unwritten_pages_do_not_translate() {
        let ftl = Ftl::new(FtlConfig::small());
        assert!(!ftl.is_mapped(0));
        assert_eq!(ftl.translate(17), None);
    }
}
