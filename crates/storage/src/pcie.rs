//! PCIe links and the host IO switch.
//!
//! Link rates follow the PCI-SIG per-lane raw rates with 128b/130b encoding;
//! the *effective* host bandwidth is further derated for protocol and IO
//! software-stack overheads, matching the ~12 GB/s the paper (citing
//! INSIDER) measures for a Gen3 x16 host interface.

use reach_sim::{Bandwidth, BandwidthResource, Reservation, SimDuration, SimTime};

/// PCI Express generation (per-lane raw gigatransfers/s).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 8 GT/s per lane, 128b/130b encoding (~0.985 GB/s raw per lane).
    Gen3,
    /// 16 GT/s per lane.
    Gen4,
}

impl PcieGen {
    /// Raw per-lane payload rate in bytes/s after line encoding.
    #[must_use]
    pub fn lane_bytes_per_sec(self) -> u64 {
        match self {
            PcieGen::Gen3 => 984_615_384,   // 8 GT/s * 128/130 / 8 bits
            PcieGen::Gen4 => 1_969_230_769, // 16 GT/s * 128/130 / 8 bits
        }
    }
}

/// A point-to-point PCIe link.
///
/// # Example
///
/// ```
/// use reach_storage::{PcieGen, PcieLink};
/// use reach_sim::SimTime;
///
/// // The local FPGA-SSD link of a near-storage accelerator.
/// let mut link = PcieLink::new(PcieGen::Gen3, 16, 0.95);
/// let r = link.transfer(SimTime::ZERO, 1 << 20);
/// assert!(r.complete > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct PcieLink {
    link: BandwidthResource,
    lanes: u32,
    gen: PcieGen,
}

impl PcieLink {
    /// Creates a link with the given generation, lane count and protocol
    /// efficiency in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn new(gen: PcieGen, lanes: u32, efficiency: f64) -> Self {
        assert!(lanes > 0, "PcieLink: need at least one lane");
        let raw = Bandwidth::from_bytes_per_sec(gen.lane_bytes_per_sec() * u64::from(lanes));
        PcieLink {
            link: BandwidthResource::new(raw.derate(efficiency), SimDuration::from_ns(500)),
            lanes,
            gen,
        }
    }

    /// The host-side Gen3 x16 interface at the ~12 GB/s *effective* rate the
    /// paper assumes after IO software-stack overheads.
    #[must_use]
    pub fn host_gen3_x16_effective() -> Self {
        // 15.75 GB/s raw x16 -> 12 GB/s effective: 0.762 efficiency.
        Self::new(PcieGen::Gen3, 16, 0.762)
    }

    /// Effective bandwidth of this link.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        self.link.bandwidth()
    }

    /// Lane count.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Generation.
    #[must_use]
    pub fn gen(&self) -> PcieGen {
        self.gen
    }

    /// Moves `bytes` across the link.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        self.link.transfer(now, bytes)
    }

    /// Total bytes carried (for link-energy accounting).
    #[must_use]
    pub fn bytes_transferred(&self) -> u64 {
        self.link.bytes_transferred()
    }

    /// Total occupied wire time.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.link.busy_time()
    }

    /// The instant the link next becomes free.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.link.free_at()
    }
}

/// The host IO switch: every host<->storage transfer crosses one shared
/// upstream port, which is exactly the bottleneck the paper's near-storage
/// level removes.
///
/// # Example
///
/// ```
/// use reach_storage::PcieSwitch;
/// use reach_sim::SimTime;
///
/// let mut sw = PcieSwitch::paper_host_io();
/// let a = sw.host_transfer(SimTime::ZERO, 6_000_000_000); // ~0.5 s at 12 GB/s
/// let b = sw.host_transfer(SimTime::ZERO, 6_000_000_000);
/// assert_eq!(b.start, a.ready); // serialized on the shared upstream port
/// ```
#[derive(Debug)]
pub struct PcieSwitch {
    upstream: PcieLink,
}

impl PcieSwitch {
    /// Creates a switch with the given upstream link.
    #[must_use]
    pub fn new(upstream: PcieLink) -> Self {
        PcieSwitch { upstream }
    }

    /// The paper's host IO configuration: a Gen3 x16 upstream at ~12 GB/s
    /// effective, fronting 4 NVMe SSDs.
    #[must_use]
    pub fn paper_host_io() -> Self {
        Self::new(PcieLink::host_gen3_x16_effective())
    }

    /// Moves `bytes` between the host and any downstream device, reserving
    /// the shared upstream port.
    pub fn host_transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        self.upstream.transfer(now, bytes)
    }

    /// Bytes that crossed the upstream port.
    #[must_use]
    pub fn bytes_transferred(&self) -> u64 {
        self.upstream.bytes_transferred()
    }

    /// Occupied time of the upstream port.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.upstream.busy_time()
    }

    /// Effective upstream bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        self.upstream.bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x16_raw_rate() {
        let link = PcieLink::new(PcieGen::Gen3, 16, 1.0);
        let gbps = link.bandwidth().as_gbps_f64();
        assert!((gbps - 15.75).abs() < 0.1, "raw x16 {gbps}");
    }

    #[test]
    fn effective_host_rate_is_about_12_gbps() {
        let link = PcieLink::host_gen3_x16_effective();
        let gbps = link.bandwidth().as_gbps_f64();
        assert!((gbps - 12.0).abs() < 0.1, "effective {gbps}");
    }

    #[test]
    fn gen4_doubles_gen3() {
        let g3 = PcieLink::new(PcieGen::Gen3, 4, 1.0)
            .bandwidth()
            .as_bytes_per_sec();
        let g4 = PcieLink::new(PcieGen::Gen4, 4, 1.0)
            .bandwidth()
            .as_bytes_per_sec();
        let ratio = g4 as f64 / g3 as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn switch_serializes_concurrent_streams() {
        let mut sw = PcieSwitch::paper_host_io();
        let bytes = 1_200_000_000; // 0.1 s at 12 GB/s
        let a = sw.host_transfer(SimTime::ZERO, bytes);
        let b = sw.host_transfer(SimTime::ZERO, bytes);
        assert_eq!(b.start, a.ready);
        let total = (b.complete - SimTime::ZERO).as_secs_f64();
        assert!(
            (total - 0.2).abs() < 0.01,
            "two streams take ~0.2 s, got {total}"
        );
    }

    #[test]
    fn transfer_accumulates_stats() {
        let mut link = PcieLink::new(PcieGen::Gen3, 4, 1.0);
        link.transfer(SimTime::ZERO, 1_000);
        link.transfer(SimTime::ZERO, 2_000);
        assert_eq!(link.bytes_transferred(), 3_000);
        assert!(link.busy_time() > reach_sim::SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = PcieLink::new(PcieGen::Gen3, 0, 1.0);
    }
}
