//! # reach-accel — reconfigurable accelerator models
//!
//! The compute engines of the ReACH hierarchy:
//!
//! * [`fpga`] — FPGA parts (resource vectors for the Virtex UltraScale+
//!   VU9P used on-chip and the Zynq UltraScale+ ZU9EG used near memory and
//!   near storage) and utilization checking.
//! * [`kernel`] — kernel specifications: the frequency, utilization and
//!   power numbers of the paper's Table III, plus the MAC-rate timing model
//!   derived from them.
//! * [`instance`] — accelerator instances: a loaded kernel, a busy-until
//!   calendar, partial-reconfiguration delay, and the busy-time statistics
//!   the energy model bills.
//! * [`templates`] — the accelerator template registry the ReACH runtime
//!   library resolves `RegisterAcc("VGG16-VU9P", …)`-style names against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpga;
pub mod instance;
pub mod kernel;
pub mod templates;

pub use fpga::{FpgaPart, Resources, Utilization};
pub use instance::{Accelerator, AcceleratorId};
pub use kernel::{ComputeLevel, KernelClass, KernelSpec};
pub use templates::TemplateRegistry;
