//! FPGA parts and resource accounting.

use std::fmt;

/// Programmable-fabric resource counts of an FPGA part.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Resources {
    /// Flip-flops.
    pub ff: u64,
    /// Look-up tables.
    pub lut: u64,
    /// DSP slices.
    pub dsp: u64,
    /// Block RAM tiles (36 Kb each).
    pub bram36: u64,
}

/// Fraction of each resource class a kernel occupies, in percent
/// (the unit the paper's Table III reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Utilization {
    /// Flip-flop utilization, percent.
    pub ff: u8,
    /// LUT utilization, percent.
    pub lut: u8,
    /// DSP utilization, percent.
    pub dsp: u8,
    /// BRAM utilization, percent.
    pub bram: u8,
}

impl Utilization {
    /// Creates a utilization vector.
    ///
    /// # Panics
    ///
    /// Panics if any component exceeds 100%.
    #[must_use]
    pub fn new(ff: u8, lut: u8, dsp: u8, bram: u8) -> Self {
        assert!(
            ff <= 100 && lut <= 100 && dsp <= 100 && bram <= 100,
            "Utilization: components must be <= 100%"
        );
        Utilization { ff, lut, dsp, bram }
    }

    /// The largest component — the resource class that limits placement.
    #[must_use]
    pub fn peak(&self) -> u8 {
        self.ff.max(self.lut).max(self.dsp).max(self.bram)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(ff {}%, lut {}%, dsp {}%, bram {}%)",
            self.ff, self.lut, self.dsp, self.bram
        )
    }
}

/// An FPGA part: a named resource vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FpgaPart {
    /// Marketing name, e.g. `"XCVU9P"`.
    pub name: &'static str,
    /// Fabric resources.
    pub resources: Resources,
}

impl FpgaPart {
    /// Xilinx Virtex UltraScale+ XCVU9P — the on-chip accelerator fabric.
    #[must_use]
    pub fn vu9p() -> Self {
        FpgaPart {
            name: "XCVU9P",
            resources: Resources {
                ff: 2_364_480,
                lut: 1_182_240,
                dsp: 6_840,
                bram36: 2_160,
            },
        }
    }

    /// Xilinx Zynq UltraScale+ ZU9EG — the embedded near-memory /
    /// near-storage fabric.
    #[must_use]
    pub fn zu9eg() -> Self {
        FpgaPart {
            name: "ZU9EG",
            resources: Resources {
                ff: 548_160,
                lut: 274_080,
                dsp: 2_520,
                bram36: 912,
            },
        }
    }

    /// Number of DSP slices a kernel with the given utilization occupies.
    #[must_use]
    pub fn dsp_used(&self, util: Utilization) -> u64 {
        self.resources.dsp * u64::from(util.dsp) / 100
    }

    /// `true` when a kernel with utilization `util` fits on this part
    /// (every component at or below 100% — Table III utilizations are
    /// already relative to the part).
    #[must_use]
    pub fn fits(&self, util: Utilization) -> bool {
        util.peak() <= 100
    }
}

impl fmt::Display for FpgaPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_resource_ratios() {
        let big = FpgaPart::vu9p();
        let small = FpgaPart::zu9eg();
        // The on-chip part is roughly 2.7x the embedded part in DSPs —
        // the asymmetry the compute hierarchy trades on.
        let ratio = big.resources.dsp as f64 / small.resources.dsp as f64;
        assert!(ratio > 2.5 && ratio < 3.0, "dsp ratio {ratio}");
    }

    #[test]
    fn dsp_used_scales_with_utilization() {
        let part = FpgaPart::vu9p();
        let util = Utilization::new(36, 81, 78, 42);
        assert_eq!(part.dsp_used(util), 6_840 * 78 / 100);
    }

    #[test]
    fn peak_picks_binding_resource() {
        let util = Utilization::new(24, 27, 56, 77);
        assert_eq!(util.peak(), 77);
    }

    #[test]
    #[should_panic(expected = "<= 100%")]
    fn over_100_percent_rejected() {
        let _ = Utilization::new(10, 101, 10, 10);
    }

    #[test]
    fn display_formats() {
        let util = Utilization::new(10, 10, 10, 22);
        assert_eq!(util.to_string(), "(ff 10%, lut 10%, dsp 10%, bram 22%)");
        assert_eq!(FpgaPart::vu9p().to_string(), "XCVU9P");
    }
}
