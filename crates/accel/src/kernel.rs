//! Kernel specifications and the MAC-rate timing model.
//!
//! The paper extracts "kernel frequency, initiation interval, pipeline depth
//! and iterations" from HLS synthesis reports and plugs them into its
//! simulator. We reconstruct the same information from the published
//! Table III (utilization, frequency, power): a kernel's sustained rate is
//!
//! ```text
//! macs_per_cycle = dsp_slices x dsp_utilization x mac_efficiency
//! ```
//!
//! where `mac_efficiency` captures how much of the occupied DSP fabric does
//! useful multiply-accumulates each cycle (systolic CNN arrays come close to
//! 1.0; latency-bound kernels sit lower). Pipeline fill is billed through an
//! explicit `pipeline_depth`.

use crate::fpga::{FpgaPart, Utilization};
use reach_sim::{Frequency, SimDuration};
use std::fmt;

/// Which level of the hierarchy an accelerator sits at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeLevel {
    /// Cache-coherent on-chip accelerator.
    OnChip,
    /// Accelerator-interposed memory (one per DIMM).
    NearMemory,
    /// SSD-attached accelerator (one per drive).
    NearStorage,
}

impl ComputeLevel {
    /// All levels, in hierarchy order.
    pub const ALL: [ComputeLevel; 3] = [
        ComputeLevel::OnChip,
        ComputeLevel::NearMemory,
        ComputeLevel::NearStorage,
    ];
}

impl fmt::Display for ComputeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComputeLevel::OnChip => "on-chip",
            ComputeLevel::NearMemory => "near-memory",
            ComputeLevel::NearStorage => "near-storage",
        })
    }
}

/// The algorithmic family of a kernel (the paper designs one of each per
/// FPGA part).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Convolutional neural network (feature extraction).
    Cnn,
    /// General matrix-matrix multiplication (short-list retrieval).
    Gemm,
    /// K-nearest-neighbours distance + partial sort (rerank).
    Knn,
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelClass::Cnn => "CNN",
            KernelClass::Gemm => "GeMM",
            KernelClass::Knn => "KNN",
        })
    }
}

/// A synthesized kernel: everything the simulator needs to time and power
/// one accelerator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelSpec {
    /// Template name, e.g. `"VGG16-VU9P"`.
    pub name: &'static str,
    /// Algorithmic family.
    pub class: KernelClass,
    /// Target part.
    pub part: FpgaPart,
    /// Hierarchy level this template is synthesized for.
    pub level: ComputeLevel,
    /// Post-route clock.
    pub frequency: Frequency,
    /// Resource utilization (Table III).
    pub utilization: Utilization,
    /// Active power in watts (Table III; near-memory and near-storage
    /// variants of the same Zynq kernel differ because of the DRAM buffer).
    pub power_w: f64,
    /// Useful MACs per occupied DSP per cycle.
    pub mac_efficiency: f64,
    /// Pipeline depth in cycles (fill latency billed once per task).
    pub pipeline_depth: u64,
    /// Width of the kernel's streaming datapath in bytes consumed per cycle
    /// (0 = the datapath never limits ingest). For streaming kernels (KNN)
    /// this is the binding constraint the paper observes: a narrow embedded
    /// datapath caps how fast the kernel can drink from its data medium.
    pub io_bytes_per_cycle: f64,
    /// Number of argument slots the kernel's driver signature exposes —
    /// the arity `SetArg` calls are validated against.
    pub arg_slots: usize,
}

impl KernelSpec {
    /// Sustained multiply-accumulate rate in MACs per second.
    #[must_use]
    pub fn macs_per_sec(&self) -> f64 {
        let dsp = self.part.dsp_used(self.utilization) as f64;
        dsp * self.mac_efficiency * self.frequency.as_hz() as f64
    }

    /// Time to execute `macs` multiply-accumulates, including one pipeline
    /// fill.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has no usable DSP fabric.
    #[must_use]
    pub fn compute_time(&self, macs: u64) -> SimDuration {
        let rate = self.macs_per_sec();
        assert!(
            rate > 0.0,
            "KernelSpec::compute_time: {} has no DSP fabric",
            self.name
        );
        let fill = self.frequency.cycles(self.pipeline_depth);
        fill + SimDuration::from_secs_f64(macs as f64 / rate)
    }

    /// The streaming rate at which this kernel can *consume* input bytes,
    /// given `macs_per_byte` arithmetic intensity — the lesser of the
    /// MAC-rate bound and the datapath-width bound. Used to decide whether a
    /// stage is compute- or bandwidth-bound.
    #[must_use]
    pub fn consume_bytes_per_sec(&self, macs_per_byte: f64) -> f64 {
        assert!(macs_per_byte > 0.0, "arithmetic intensity must be positive");
        let mac_bound = self.macs_per_sec() / macs_per_byte;
        match self.io_rate_bytes_per_sec() {
            Some(io) => mac_bound.min(io),
            None => mac_bound,
        }
    }

    /// The datapath ingest rate in bytes/s, or `None` when unbounded.
    #[must_use]
    pub fn io_rate_bytes_per_sec(&self) -> Option<f64> {
        if self.io_bytes_per_cycle > 0.0 {
            Some(self.io_bytes_per_cycle * self.frequency.as_hz() as f64)
        } else {
            None
        }
    }
}

impl fmt::Display for KernelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} on {} @{} {}W]",
            self.name, self.class, self.part, self.frequency, self.power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vu9p_cnn() -> KernelSpec {
        KernelSpec {
            name: "VGG16-VU9P",
            class: KernelClass::Cnn,
            part: FpgaPart::vu9p(),
            level: ComputeLevel::OnChip,
            frequency: Frequency::from_mhz(273),
            utilization: Utilization::new(36, 81, 78, 42),
            power_w: 25.0,
            mac_efficiency: 0.273,
            pipeline_depth: 120,
            io_bytes_per_cycle: 0.0,
            arg_slots: 3,
        }
    }

    fn zu9_cnn() -> KernelSpec {
        KernelSpec {
            name: "VGG16-ZCU9",
            class: KernelClass::Cnn,
            part: FpgaPart::zu9eg(),
            level: ComputeLevel::NearMemory,
            frequency: Frequency::from_mhz(200),
            utilization: Utilization::new(11, 31, 38, 36),
            power_w: 5.19,
            mac_efficiency: 0.273,
            pipeline_depth: 120,
            io_bytes_per_cycle: 0.0,
            arg_slots: 3,
        }
    }

    #[test]
    fn onchip_cnn_is_7_to_10x_faster_than_embedded() {
        // The paper (Section VI-B): a single on-chip CNN instance is 7-10x
        // faster than a single near-memory/near-storage instance.
        let ratio = vu9p_cnn().macs_per_sec() / zu9_cnn().macs_per_sec();
        assert!(ratio > 7.0 && ratio < 10.0, "speed ratio {ratio}");
    }

    #[test]
    fn compute_time_scales_with_macs() {
        let k = vu9p_cnn();
        let one = k.compute_time(1_000_000_000);
        let ten = k.compute_time(10_000_000_000);
        let ratio = ten.as_secs_f64() / one.as_secs_f64();
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn pipeline_fill_billed_once() {
        let k = vu9p_cnn();
        let fill = k.frequency.cycles(k.pipeline_depth);
        assert_eq!(k.compute_time(0), fill);
    }

    #[test]
    fn consume_rate_inverts_intensity() {
        let k = vu9p_cnn();
        let half = k.consume_bytes_per_sec(2.0);
        let quarter = k.consume_bytes_per_sec(4.0);
        assert!((half / quarter - 2.0).abs() < 1e-9);
    }

    #[test]
    fn level_display_and_order() {
        assert_eq!(ComputeLevel::OnChip.to_string(), "on-chip");
        assert_eq!(ComputeLevel::ALL.len(), 3);
        assert!(ComputeLevel::OnChip < ComputeLevel::NearStorage);
    }

    #[test]
    fn spec_display_is_informative() {
        let s = vu9p_cnn().to_string();
        assert!(s.contains("VGG16-VU9P") && s.contains("273MHz") && s.contains("25"));
    }
}
