//! Accelerator instances: a physical FPGA slot in the hierarchy.

use crate::kernel::{ComputeLevel, KernelSpec};
use reach_sim::{Reservation, SerialResource, SimDuration, SimTime};
use std::fmt;

/// Identifies one accelerator slot in the machine: its level and its index
/// within that level (DIMM number for near-memory, SSD number for
/// near-storage, always 0 on-chip).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AcceleratorId {
    /// Hierarchy level.
    pub level: ComputeLevel,
    /// Index within the level.
    pub index: usize,
}

impl fmt::Display for AcceleratorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.level, self.index)
    }
}

/// Busy-time and task statistics of one accelerator slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AcceleratorStats {
    /// Tasks executed.
    pub tasks: u64,
    /// Reconfigurations performed.
    pub reconfigurations: u64,
}

/// One reconfigurable accelerator slot.
///
/// An `Accelerator` owns a busy-until calendar (tasks on the same slot
/// serialize), the currently loaded kernel, and a partial-reconfiguration
/// delay billed whenever a different kernel is swapped in. Today's FPGAs
/// swap partial bitstreams in sub-millisecond time (the paper cites the
/// Versal ACAP and deliberately ignores the delay in its baseline); the
/// default here is 500 us and can be set to zero to match the paper exactly.
///
/// # Example
///
/// ```
/// use reach_accel::{Accelerator, AcceleratorId, ComputeLevel, TemplateRegistry};
/// use reach_sim::{SimTime, SimDuration};
///
/// let registry = TemplateRegistry::paper_table3();
/// let kernel = registry.get("VGG16-VU9P").unwrap();
/// let mut acc = Accelerator::new(
///     AcceleratorId { level: ComputeLevel::OnChip, index: 0 },
///     SimDuration::ZERO, // reprogramming delay ignored, as in the paper
/// );
/// let ready = acc.load(SimTime::ZERO, kernel.clone());
/// let run = acc.run(ready, kernel.compute_time(1_000_000_000));
/// assert!(run.complete > ready);
/// ```
#[derive(Clone, Debug)]
pub struct Accelerator {
    id: AcceleratorId,
    loaded: Option<KernelSpec>,
    engine: SerialResource,
    reconfig_delay: SimDuration,
    stats: AcceleratorStats,
}

impl Accelerator {
    /// Creates an empty (unconfigured) slot.
    #[must_use]
    pub fn new(id: AcceleratorId, reconfig_delay: SimDuration) -> Self {
        Accelerator {
            id,
            loaded: None,
            engine: SerialResource::new(),
            reconfig_delay,
            stats: AcceleratorStats::default(),
        }
    }

    /// The slot identifier.
    #[must_use]
    pub fn id(&self) -> AcceleratorId {
        self.id
    }

    /// The currently loaded kernel, if any.
    #[must_use]
    pub fn loaded(&self) -> Option<&KernelSpec> {
        self.loaded.as_ref()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &AcceleratorStats {
        &self.stats
    }

    /// Loads `kernel` onto the slot, billing the partial-reconfiguration
    /// delay if a *different* kernel was resident. Returns when the slot is
    /// ready to run.
    ///
    /// # Panics
    ///
    /// Panics if the kernel was synthesized for a different hierarchy level —
    /// a bitstream for the on-chip Virtex part cannot configure an embedded
    /// Zynq module.
    pub fn load(&mut self, now: SimTime, kernel: KernelSpec) -> SimTime {
        assert_eq!(
            kernel.level, self.id.level,
            "Accelerator::load: kernel {} targets {} but slot {} is {}",
            kernel.name, kernel.level, self.id, self.id.level
        );
        let same = self.loaded.as_ref().is_some_and(|k| k.name == kernel.name);
        if same {
            return now.max(self.engine.free_at());
        }
        self.stats.reconfigurations += 1;
        let res = self.engine.reserve(now, self.reconfig_delay);
        self.loaded = Some(kernel);
        res.ready
    }

    /// Runs one task occupying the engine for `duration` (computed by the
    /// caller from the kernel model and the data-path time).
    ///
    /// # Panics
    ///
    /// Panics if no kernel is loaded.
    pub fn run(&mut self, now: SimTime, duration: SimDuration) -> Reservation {
        assert!(
            self.loaded.is_some(),
            "Accelerator::run: no kernel loaded on {}",
            self.id
        );
        self.stats.tasks += 1;
        self.engine.reserve(now, duration)
    }

    /// When the slot next becomes free.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.engine.free_at()
    }

    /// Total busy time (drives active-power energy billing).
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.engine.busy_time()
    }

    /// Active power of the loaded kernel in watts (0 when unconfigured).
    #[must_use]
    pub fn active_power_w(&self) -> f64 {
        self.loaded.as_ref().map_or(0.0, |k| k.power_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TemplateRegistry;

    fn slot(level: ComputeLevel) -> Accelerator {
        Accelerator::new(AcceleratorId { level, index: 0 }, SimDuration::from_us(500))
    }

    #[test]
    fn load_bills_reconfiguration_once() {
        let reg = TemplateRegistry::paper_table3();
        let k = *reg.get("VGG16-VU9P").unwrap();
        let mut acc = slot(ComputeLevel::OnChip);
        let r1 = acc.load(SimTime::ZERO, k);
        assert_eq!(r1, SimTime::ZERO + SimDuration::from_us(500));
        // Reloading the same kernel is free.
        let r2 = acc.load(r1, k);
        assert_eq!(r2, r1);
        assert_eq!(acc.stats().reconfigurations, 1);
    }

    #[test]
    fn swapping_kernels_bills_again() {
        let reg = TemplateRegistry::paper_table3();
        let mut acc = slot(ComputeLevel::OnChip);
        acc.load(SimTime::ZERO, *reg.get("VGG16-VU9P").unwrap());
        acc.load(SimTime::ZERO, *reg.get("GEMM-VU9P").unwrap());
        assert_eq!(acc.stats().reconfigurations, 2);
        assert_eq!(acc.loaded().unwrap().name, "GEMM-VU9P");
    }

    #[test]
    fn tasks_serialize_on_one_slot() {
        let reg = TemplateRegistry::paper_table3();
        let mut acc = slot(ComputeLevel::OnChip);
        let t0 = acc.load(SimTime::ZERO, *reg.get("KNN-VU9P").unwrap());
        let a = acc.run(t0, SimDuration::from_ms(2));
        let b = acc.run(t0, SimDuration::from_ms(2));
        assert_eq!(b.start, a.ready);
        assert_eq!(acc.stats().tasks, 2);
        assert_eq!(
            acc.busy_time(),
            SimDuration::from_ms(4) + SimDuration::from_us(500)
        );
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn level_mismatch_rejected() {
        let reg = TemplateRegistry::paper_table3();
        let mut acc = slot(ComputeLevel::NearMemory);
        acc.load(SimTime::ZERO, *reg.get("VGG16-VU9P").unwrap());
    }

    #[test]
    #[should_panic(expected = "no kernel loaded")]
    fn run_requires_kernel() {
        let mut acc = slot(ComputeLevel::OnChip);
        acc.run(SimTime::ZERO, SimDuration::from_ms(1));
    }

    #[test]
    fn id_display() {
        let id = AcceleratorId {
            level: ComputeLevel::NearStorage,
            index: 3,
        };
        assert_eq!(id.to_string(), "near-storage[3]");
    }

    #[test]
    fn active_power_follows_loaded_kernel() {
        let reg = TemplateRegistry::paper_table3();
        let mut acc = slot(ComputeLevel::OnChip);
        assert_eq!(acc.active_power_w(), 0.0);
        acc.load(SimTime::ZERO, *reg.get("VGG16-VU9P").unwrap());
        assert!((acc.active_power_w() - 25.0).abs() < 1e-9);
    }
}
