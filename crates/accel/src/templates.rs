//! The accelerator template registry — the paper's Table III in code.
//!
//! "Once a compute kernel is carefully designed and generated for a specific
//! compute level, the FPGA bitstream alongside a kernel-specific driver and
//! data flow graph would be stored as an accelerator template" (Section
//! III-A). The registry resolves template names such as `"VGG16-VU9P"` or
//! `"KNN-ZCU9"` to [`KernelSpec`]s.
//!
//! ## Where the numbers come from
//!
//! Frequency, utilization and power are copied verbatim from Table III. Two
//! parameters the paper read out of HLS synthesis reports are reconstructed:
//!
//! * `mac_efficiency` — useful MACs per occupied DSP per cycle. CNN and GEMM
//!   systolic arrays sustain 0.85 and 0.80 respectively; these values land
//!   the single-instance on-chip/embedded CNN speed ratio inside the 7–10x
//!   the paper reports.
//! * `io_bytes_per_cycle` — streaming datapath width. The embedded KNN
//!   kernel's narrow 10 B/cycle datapath (1.5 GB/s at 150 MHz) is what lets
//!   near-storage rerank scale per-SSD instead of saturating a shared link,
//!   while the wide GEMM datapaths keep short-list retrieval
//!   bandwidth-bound at every level.

use crate::fpga::{FpgaPart, Utilization};
use crate::kernel::{ComputeLevel, KernelClass, KernelSpec};
use reach_sim::Frequency;

/// A registry of pre-optimized accelerator templates.
///
/// # Example
///
/// ```
/// use reach_accel::{TemplateRegistry, ComputeLevel};
///
/// let reg = TemplateRegistry::paper_table3();
/// let knn = reg.resolve("KNN-ZCU9", ComputeLevel::NearStorage).unwrap();
/// assert_eq!(knn.power_w, 2.4); // the near-storage power variant
/// ```
#[derive(Clone, Debug, Default)]
pub struct TemplateRegistry {
    specs: Vec<KernelSpec>,
}

impl TemplateRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The nine kernels of the paper's Table III: CNN / GeMM / KNN on the
    /// Virtex UltraScale+ VU9P (on-chip) and on the Zynq UltraScale+ ZU9EG
    /// in both its near-memory and near-storage power variants.
    #[must_use]
    pub fn paper_table3() -> Self {
        let vu9p = FpgaPart::vu9p();
        let zu9 = FpgaPart::zu9eg();
        let mut reg = Self::new();

        // --- On-chip (Virtex UltraScale+ XCVU9P) ---
        reg.register(KernelSpec {
            name: "VGG16-VU9P",
            class: KernelClass::Cnn,
            part: vu9p,
            level: ComputeLevel::OnChip,
            frequency: Frequency::from_mhz(273),
            utilization: Utilization::new(36, 81, 78, 42),
            power_w: 25.0,
            mac_efficiency: 0.85,
            pipeline_depth: 128,
            io_bytes_per_cycle: 0.0,
            arg_slots: 3,
        });
        reg.register(KernelSpec {
            name: "GEMM-VU9P",
            class: KernelClass::Gemm,
            part: vu9p,
            level: ComputeLevel::OnChip,
            frequency: Frequency::from_mhz(273),
            utilization: Utilization::new(24, 27, 56, 77),
            power_w: 22.13,
            mac_efficiency: 0.80,
            pipeline_depth: 96,
            io_bytes_per_cycle: 128.0,
            arg_slots: 3,
        });
        reg.register(KernelSpec {
            name: "KNN-VU9P",
            class: KernelClass::Knn,
            part: vu9p,
            level: ComputeLevel::OnChip,
            frequency: Frequency::from_mhz(200),
            utilization: Utilization::new(10, 10, 10, 22),
            power_w: 11.14,
            mac_efficiency: 0.5,
            pipeline_depth: 64,
            io_bytes_per_cycle: 7.25,
            arg_slots: 3,
        });

        // --- Embedded (Zynq UltraScale+ ZU9EG), near-memory variants ---
        for (level, cnn_w, gemm_w, knn_w) in [
            (ComputeLevel::NearMemory, 5.19, 5.3, 1.8),
            (ComputeLevel::NearStorage, 6.13, 8.0, 2.4),
        ] {
            reg.register(KernelSpec {
                name: "VGG16-ZCU9",
                class: KernelClass::Cnn,
                part: zu9,
                level,
                frequency: Frequency::from_mhz(200),
                utilization: Utilization::new(11, 31, 38, 36),
                power_w: cnn_w,
                mac_efficiency: 0.85,
                pipeline_depth: 128,
                io_bytes_per_cycle: 0.0,
                arg_slots: 3,
            });
            reg.register(KernelSpec {
                name: "GEMM-ZCU9",
                class: KernelClass::Gemm,
                part: zu9,
                level,
                frequency: Frequency::from_mhz(150),
                utilization: Utilization::new(36, 27, 76, 92),
                power_w: gemm_w,
                mac_efficiency: 0.80,
                pipeline_depth: 96,
                io_bytes_per_cycle: 128.0,
                arg_slots: 3,
            });
            reg.register(KernelSpec {
                name: "KNN-ZCU9",
                class: KernelClass::Knn,
                part: zu9,
                level,
                frequency: Frequency::from_mhz(150),
                utilization: Utilization::new(23, 20, 30, 22),
                power_w: knn_w,
                mac_efficiency: 0.5,
                pipeline_depth: 64,
                io_bytes_per_cycle: 10.0,
                arg_slots: 3,
            });
        }
        reg
    }

    /// Adds a template.
    ///
    /// # Panics
    ///
    /// Panics if a template with the same name *and* level already exists,
    /// or if the kernel does not fit its part.
    pub fn register(&mut self, spec: KernelSpec) {
        assert!(
            spec.part.fits(spec.utilization),
            "TemplateRegistry: {} does not fit {}",
            spec.name,
            spec.part
        );
        assert!(
            !self
                .specs
                .iter()
                .any(|s| s.name == spec.name && s.level == spec.level),
            "TemplateRegistry: duplicate template {} at {}",
            spec.name,
            spec.level
        );
        self.specs.push(spec);
    }

    /// Looks a template up by name alone; `None` when absent *or ambiguous*
    /// (Zynq templates exist in two level variants — use [`Self::resolve`]).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&KernelSpec> {
        let mut found = self.specs.iter().filter(|s| s.name == name);
        let first = found.next()?;
        if found.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Looks a template up by name and target level — the lookup
    /// `RegisterAcc(template, level)` performs.
    #[must_use]
    pub fn resolve(&self, name: &str, level: ComputeLevel) -> Option<&KernelSpec> {
        self.specs
            .iter()
            .find(|s| s.name == name && s.level == level)
    }

    /// Like [`Self::resolve`] but returns a stable index usable with
    /// [`Self::spec_at`]. Callers on a hot path resolve once at submit time
    /// and index per dispatch, skipping the string comparison entirely.
    #[must_use]
    pub fn resolve_index(&self, name: &str, level: ComputeLevel) -> Option<usize> {
        self.specs
            .iter()
            .position(|s| s.name == name && s.level == level)
    }

    /// The template at `index` (as returned by [`Self::resolve_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn spec_at(&self, index: usize) -> &KernelSpec {
        &self.specs[index]
    }

    /// Iterates over every registered template.
    pub fn iter(&self) -> impl Iterator<Item = &KernelSpec> {
        self.specs.iter()
    }

    /// Number of registered templates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no templates are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_nine_kernels() {
        let reg = TemplateRegistry::paper_table3();
        assert_eq!(reg.len(), 9);
    }

    #[test]
    fn unique_names_resolve_directly() {
        let reg = TemplateRegistry::paper_table3();
        assert!(reg.get("VGG16-VU9P").is_some());
        assert!(reg.get("GEMM-VU9P").is_some());
        assert!(reg.get("KNN-VU9P").is_some());
        // Zynq names are ambiguous by name alone.
        assert!(reg.get("KNN-ZCU9").is_none());
        assert!(reg.get("NOPE").is_none());
    }

    #[test]
    fn zynq_power_variants_differ_by_level() {
        let reg = TemplateRegistry::paper_table3();
        let nm = reg.resolve("GEMM-ZCU9", ComputeLevel::NearMemory).unwrap();
        let ns = reg.resolve("GEMM-ZCU9", ComputeLevel::NearStorage).unwrap();
        assert_eq!(nm.power_w, 5.3);
        assert_eq!(ns.power_w, 8.0);
    }

    #[test]
    fn onchip_cnn_rate_supports_100ms_batch() {
        // Calibration anchor: a 16-image VGG-16 batch (~124 GMACs) should
        // take ~100 ms on the on-chip CNN.
        let reg = TemplateRegistry::paper_table3();
        let cnn = reg.get("VGG16-VU9P").unwrap();
        let t = cnn.compute_time(16 * 7_750_000_000).as_ms_f64();
        assert!((t - 100.0).abs() < 10.0, "batch time {t} ms");
    }

    #[test]
    fn embedded_knn_datapath_is_1_5_gbps() {
        let reg = TemplateRegistry::paper_table3();
        let knn = reg.resolve("KNN-ZCU9", ComputeLevel::NearStorage).unwrap();
        let rate = knn.io_rate_bytes_per_sec().unwrap();
        assert!((rate - 1.5e9).abs() < 1e6, "rate {rate}");
    }

    #[test]
    fn embedded_gemm_keeps_up_with_dimm_bandwidth() {
        // The NM GEMM datapath must exceed the ~18 GB/s local DIMM rate so
        // short-list retrieval stays bandwidth-bound, as in the paper.
        let reg = TemplateRegistry::paper_table3();
        let gemm = reg.resolve("GEMM-ZCU9", ComputeLevel::NearMemory).unwrap();
        assert!(gemm.io_rate_bytes_per_sec().unwrap() > 18.0e9);
    }

    #[test]
    #[should_panic(expected = "duplicate template")]
    fn duplicate_registration_rejected() {
        let mut reg = TemplateRegistry::paper_table3();
        let spec = *reg.get("VGG16-VU9P").unwrap();
        reg.register(spec);
    }

    #[test]
    fn iteration_covers_all_levels() {
        let reg = TemplateRegistry::paper_table3();
        for level in ComputeLevel::ALL {
            assert!(
                reg.iter().any(|s| s.level == level),
                "missing level {level}"
            );
        }
    }
}
