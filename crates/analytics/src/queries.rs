//! Timed analytics queries on the compute hierarchy.
//!
//! A [`ScanQuery`] describes a selective scan-and-aggregate over a table
//! resident on the SSD array; [`ScanQuery::run`] deploys it either
//! host-side (data hauled through the shared IO interface to the on-chip
//! accelerator) or near-storage (each SSD's accelerator scans its own shard
//! and only survivors travel). The speedup tracks the ratio between the
//! aggregate SSD bandwidth and the shared host interface — the
//! Netezza-style offloading result the paper cites as prior evidence.

use crate::templates::{analytics_blueprint, analytics_registry};
use reach::{Level, Pipeline, ReachConfig, RunReport, StreamType, TaskWork};

/// Where the scan runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalyticsPlacement {
    /// Stream the table up to the on-chip accelerator (conventional).
    Host,
    /// Scan on the per-SSD accelerators; ship only survivors (ReACH-style).
    NearStorage,
}

impl AnalyticsPlacement {
    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AnalyticsPlacement::Host => "host",
            AnalyticsPlacement::NearStorage => "near-storage",
        }
    }
}

/// A selective scan + aggregate over an SSD-resident table.
///
/// # Example
///
/// ```
/// use reach_analytics::{AnalyticsPlacement, ScanQuery};
///
/// let q = ScanQuery { table_bytes: 1 << 30, selectivity_pct: 5, row_bytes: 64 };
/// let near = q.run(AnalyticsPlacement::NearStorage);
/// assert_eq!(near.jobs, 1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ScanQuery {
    /// Total table size in bytes.
    pub table_bytes: u64,
    /// Fraction of rows surviving the predicate, in percent.
    pub selectivity_pct: u32,
    /// Bytes per row (drives the per-row compare work).
    pub row_bytes: u64,
}

impl ScanQuery {
    /// A 64 GB table with 1% selectivity and 64 B rows.
    #[must_use]
    pub fn example_64gb() -> Self {
        ScanQuery {
            table_bytes: 64 << 30,
            selectivity_pct: 1,
            row_bytes: 64,
        }
    }

    /// Bytes surviving the predicate.
    #[must_use]
    pub fn survivor_bytes(&self) -> u64 {
        self.table_bytes * u64::from(self.selectivity_pct) / 100
    }

    /// Comparator work: one MAC-equivalent per row word.
    #[must_use]
    pub fn scan_macs(&self) -> u64 {
        self.table_bytes / 8
    }

    /// Runs the query once under `placement` and returns the machine report.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate query (no rows, selectivity > 100%).
    #[must_use]
    pub fn run(&self, placement: AnalyticsPlacement) -> RunReport {
        assert!(self.table_bytes > 0 && self.row_bytes > 0, "empty query");
        assert!(self.selectivity_pct <= 100, "selectivity over 100%");
        let blueprint = analytics_blueprint();
        let shards = blueprint.config().near_storage_accelerators as u64;
        let mut machine = blueprint.instantiate();

        let mut rc = ReachConfig::new();
        let result = rc.create_stream(Level::OnChip, Level::Cpu, StreamType::Pair, 4 << 10, 2);

        let mut pipeline = match placement {
            AnalyticsPlacement::Host => {
                // The whole table is dragged to the on-chip accelerator.
                let table = rc.create_fixed_buffer("table", Level::NearStor, self.table_bytes);
                let scan = rc.register_acc("SCAN-VU9P", Level::OnChip);
                rc.set_arg(scan, 0, table);
                let agg = rc.register_acc("AGG-VU9P", Level::OnChip);
                rc.set_arg(agg, 0, result);
                let mut p = Pipeline::new(
                    rc.build_with(&analytics_registry())
                        .expect("host scan config"),
                );
                p.call(
                    scan,
                    TaskWork::gather(self.scan_macs(), self.table_bytes, 4096),
                    "1-scan",
                );
                p.call(
                    agg,
                    TaskWork::stream(self.survivor_bytes() / 8, self.survivor_bytes().max(1)),
                    "2-aggregate",
                );
                p
            }
            AnalyticsPlacement::NearStorage => {
                // Each SSD's accelerator scans its shard; survivors collect
                // on-chip for the final aggregation.
                let table = rc.create_fixed_buffer("table", Level::NearStor, self.table_bytes);
                let survivors = rc.create_stream(
                    Level::NearStor,
                    Level::OnChip,
                    StreamType::Collect,
                    self.survivor_bytes().max(1),
                    2,
                );
                let scans: Vec<_> = (0..shards)
                    .map(|_| {
                        let s = rc.register_acc("SCAN-ZCU9", Level::NearStor);
                        rc.set_arg(s, 0, table);
                        rc.set_arg(s, 1, survivors);
                        s
                    })
                    .collect();
                let agg = rc.register_acc("AGG-VU9P", Level::OnChip);
                rc.set_arg(agg, 0, survivors);
                rc.set_arg(agg, 1, result);
                let mut p = Pipeline::new(
                    rc.build_with(&analytics_registry())
                        .expect("near-storage scan config"),
                );
                for s in scans {
                    p.call(
                        s,
                        TaskWork::stream(self.scan_macs() / shards, self.table_bytes / shards),
                        "1-scan",
                    );
                }
                p.call(
                    agg,
                    TaskWork::stream(self.survivor_bytes() / 8, self.survivor_bytes().max(1)),
                    "2-aggregate",
                );
                p
            }
        };
        // `Pipeline::call` chains return &mut Self; rebind to run.
        let pipeline = &mut pipeline;
        pipeline.run(&mut machine, 1)
    }

    /// Near-storage speedup over the host placement for this query.
    #[must_use]
    pub fn near_storage_speedup(&self) -> f64 {
        let host = self.run(AnalyticsPlacement::Host);
        let near = self.run(AnalyticsPlacement::NearStorage);
        host.makespan.as_secs_f64() / near.makespan.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_storage_scan_wins_big_on_selective_queries() {
        let q = ScanQuery {
            table_bytes: 8 << 30,
            selectivity_pct: 1,
            row_bytes: 64,
        };
        let speedup = q.near_storage_speedup();
        // 4 SSDs x ~12 GB/s local vs ~12 GB/s shared host IO gives ~4x on
        // the haul alone; the host placement additionally pays to stage the
        // table into DRAM before scanning it, stretching the win further.
        assert!(
            speedup > 2.5 && speedup < 10.0,
            "selective scan speedup {speedup:.2}"
        );
    }

    #[test]
    fn speedup_shrinks_with_low_selectivity_wins_remain() {
        let selective = ScanQuery {
            table_bytes: 4 << 30,
            selectivity_pct: 1,
            row_bytes: 64,
        }
        .near_storage_speedup();
        let unselective = ScanQuery {
            table_bytes: 4 << 30,
            selectivity_pct: 80,
            row_bytes: 64,
        }
        .near_storage_speedup();
        assert!(
            unselective < selective,
            "shipping 80% of the table should blunt the win: {unselective:.2} vs {selective:.2}"
        );
        assert!(unselective > 1.0, "near-storage still avoids one full haul");
    }

    #[test]
    fn both_placements_complete_and_bill_energy() {
        let q = ScanQuery {
            table_bytes: 2 << 30,
            selectivity_pct: 10,
            row_bytes: 64,
        };
        for placement in [AnalyticsPlacement::Host, AnalyticsPlacement::NearStorage] {
            let r = q.run(placement);
            assert_eq!(r.jobs, 1, "{} lost the job", placement.name());
            assert!(r.total_energy_j() > 0.0);
            assert!(r.stage("1-scan").is_some());
            assert!(r.stage("2-aggregate").is_some());
        }
    }

    #[test]
    fn survivor_math() {
        let q = ScanQuery::example_64gb();
        assert_eq!(q.survivor_bytes(), (64u64 << 30) / 100);
        assert_eq!(q.scan_macs(), (64u64 << 30) / 8);
    }
}
