//! Analytics accelerator templates.
//!
//! Scan/filter and aggregation kernels for the on-chip Virtex part and the
//! embedded Zynq parts, registered *on top of* the paper's Table III
//! registry — the extension path Section III-A describes ("for any new
//! accelerator, once a compute kernel is carefully designed … stored as an
//! accelerator template").

use reach::{MachineBlueprint, SystemConfig, TemplateRegistry};
use reach_accel::{ComputeLevel, FpgaPart, KernelClass, KernelSpec, Utilization};
use reach_sim::Frequency;

/// The machine every analytics experiment runs on: the paper's Table II
/// shape with the analytics kernels registered alongside the CBIR ones.
#[must_use]
pub fn analytics_blueprint() -> MachineBlueprint {
    MachineBlueprint::with_registry(SystemConfig::paper_table2(), analytics_registry())
}

/// The Table III registry extended with the analytics kernels.
#[must_use]
pub fn analytics_registry() -> TemplateRegistry {
    let mut reg = TemplateRegistry::paper_table3();
    let vu9p = FpgaPart::vu9p();
    let zu9 = FpgaPart::zu9eg();

    // Streaming scan+filter: trivial logic, wide datapath. The embedded
    // variant is sized to drink the full device-link rate, which is the
    // whole point of pushing selection near storage.
    reg.register(KernelSpec {
        name: "SCAN-VU9P",
        class: KernelClass::Knn, // streaming-comparison family
        part: vu9p,
        level: ComputeLevel::OnChip,
        frequency: Frequency::from_mhz(273),
        utilization: Utilization::new(8, 12, 4, 18),
        power_w: 9.5,
        mac_efficiency: 0.5,
        pipeline_depth: 24,
        io_bytes_per_cycle: 128.0, // 35 GB/s: never the bottleneck on-chip
        arg_slots: 2,
    });
    for (level, power) in [
        (ComputeLevel::NearMemory, 2.1),
        (ComputeLevel::NearStorage, 2.8),
    ] {
        reg.register(KernelSpec {
            name: "SCAN-ZCU9",
            class: KernelClass::Knn,
            part: zu9,
            level,
            frequency: Frequency::from_mhz(200),
            utilization: Utilization::new(12, 16, 6, 24),
            power_w: power,
            mac_efficiency: 0.5,
            pipeline_depth: 24,
            io_bytes_per_cycle: 64.0, // 12.8 GB/s: matches one SSD
            arg_slots: 2,
        });
    }

    // Aggregation/reduction kernel (sum/min/max trees + hash probe).
    reg.register(KernelSpec {
        name: "AGG-VU9P",
        class: KernelClass::Gemm, // dense-arithmetic family
        part: vu9p,
        level: ComputeLevel::OnChip,
        frequency: Frequency::from_mhz(273),
        utilization: Utilization::new(18, 20, 30, 34),
        power_w: 13.2,
        mac_efficiency: 0.8,
        pipeline_depth: 48,
        io_bytes_per_cycle: 128.0,
        arg_slots: 2,
    });
    for (level, power) in [
        (ComputeLevel::NearMemory, 3.4),
        (ComputeLevel::NearStorage, 4.2),
    ] {
        reg.register(KernelSpec {
            name: "AGG-ZCU9",
            class: KernelClass::Gemm,
            part: zu9,
            level,
            frequency: Frequency::from_mhz(150),
            utilization: Utilization::new(22, 24, 40, 46),
            power_w: power,
            mac_efficiency: 0.8,
            pipeline_depth: 48,
            io_bytes_per_cycle: 64.0,
            arg_slots: 2,
        });
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_table3_plus_analytics() {
        let reg = analytics_registry();
        // 9 paper kernels + 2 SCAN-ZCU9 + 1 SCAN-VU9P + 2 AGG-ZCU9 + 1 AGG-VU9P.
        assert_eq!(reg.len(), 15);
        assert!(reg
            .resolve("SCAN-ZCU9", ComputeLevel::NearStorage)
            .is_some());
        assert!(reg.resolve("VGG16-VU9P", ComputeLevel::OnChip).is_some());
    }

    #[test]
    fn embedded_scan_keeps_up_with_the_device_link() {
        let reg = analytics_registry();
        let scan = reg.resolve("SCAN-ZCU9", ComputeLevel::NearStorage).unwrap();
        let rate = scan.io_rate_bytes_per_sec().unwrap();
        assert!(
            rate >= 12.0e9,
            "scan datapath {rate:.2e} below the 12 GB/s link"
        );
    }

    #[test]
    fn analytics_kernels_fit_their_parts() {
        for k in analytics_registry().iter() {
            assert!(
                k.part.fits(k.utilization),
                "{} overflows {}",
                k.name,
                k.part
            );
        }
    }
}
