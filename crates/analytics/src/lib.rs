//! # reach-analytics — a second case study for the compute hierarchy
//!
//! The paper's introduction motivates ReACH with "common communication-bound
//! analytics workloads" that "scan, join, and summarize large volumes of
//! data", and designs the hierarchy "to enable effective acceleration on
//! *various* application pipelines" — CBIR is the case study, not the scope.
//! This crate exercises that claim with the canonical analytics trio:
//!
//! * [`table`] — a tiny functional columnar engine (tables, predicates,
//!   filter, aggregate, hash join) so results are checkable, not mocked;
//! * [`templates`] — scan / aggregate / probe accelerator kernels for the
//!   on-chip and embedded parts, registered alongside the paper's Table III
//!   registry;
//! * [`co_run`] — multi-tenant co-execution of CBIR and analytics on one
//!   machine, measuring the inter-task interference the GAM bounds;
//! * [`queries`] — timed query descriptors (selectivity, row geometry) and
//!   their deployment on the hierarchy, with experiments comparing host-side
//!   and near-storage execution.
//!
//! The headline behaviour mirrors the IBM-Netezza-style result the paper
//! cites: a selective scan near storage returns only survivors up the
//! hierarchy, so it outruns host-side scanning by roughly the ratio of
//! aggregate SSD bandwidth to the shared host IO interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod co_run;
pub mod queries;
pub mod table;
pub mod templates;

pub use co_run::{co_run_interference, co_run_interference_with, CoRunReport};
pub use queries::{AnalyticsPlacement, ScanQuery};
pub use table::{Aggregate, Predicate, Table};
pub use templates::{analytics_blueprint, analytics_registry};
