//! A tiny functional columnar engine.
//!
//! Enough of a database to make the analytics case study *checkable*:
//! integer columns, comparison predicates, filter, sum/count/min/max
//! aggregation, and an equi hash join. The timed experiments use the same
//! query shapes with billion-row geometry.

use std::collections::HashMap;

/// A columnar table of `i64` columns.
///
/// # Example
///
/// ```
/// use reach_analytics::{Aggregate, Predicate, Table};
///
/// let mut t = Table::new(&["id", "amount"]);
/// t.push(&[1, 250]);
/// t.push(&[2, 75]);
/// let big = t.filter("amount", Predicate::AtLeast(100));
/// assert_eq!(t.aggregate("amount", &big, Aggregate::Sum), 250);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Vec<i64>>,
}

impl Table {
    /// Creates an empty table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    #[must_use]
    pub fn new(names: &[&str]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for n in names {
            assert!(seen.insert(*n), "Table: duplicate column '{n}'");
        }
        Table {
            names: names.iter().map(ToString::to_string).collect(),
            columns: vec![Vec::new(); names.len()],
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the schema.
    pub fn push(&mut self, row: &[i64]) {
        assert_eq!(row.len(), self.columns.len(), "Table::push: wrong arity");
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(*v);
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Column index by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    #[must_use]
    pub fn column(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("Table: no column '{name}'"))
    }

    /// Borrow a column's values.
    #[must_use]
    pub fn values(&self, col: usize) -> &[i64] {
        &self.columns[col]
    }

    /// Row-wise bytes (8 B per column) — what a scan streams.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.columns.len() as u64 * 8
    }

    /// Filters rows by `pred` on the named column, returning the surviving
    /// row indices.
    #[must_use]
    pub fn filter(&self, column: &str, pred: Predicate) -> Vec<usize> {
        let c = self.column(column);
        self.columns[c]
            .iter()
            .enumerate()
            .filter(|(_, &v)| pred.eval(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Aggregates the named column over the given row set.
    #[must_use]
    pub fn aggregate(&self, column: &str, rows: &[usize], agg: Aggregate) -> i64 {
        let c = self.column(column);
        let vals = rows.iter().map(|&i| self.columns[c][i]);
        match agg {
            Aggregate::Count => rows.len() as i64,
            Aggregate::Sum => vals.sum(),
            Aggregate::Min => vals.min().unwrap_or(i64::MAX),
            Aggregate::Max => vals.max().unwrap_or(i64::MIN),
        }
    }

    /// Equi hash join: returns `(left_row, right_row)` index pairs where
    /// `self[left_on] == right[right_on]`, building on the smaller side.
    #[must_use]
    pub fn hash_join(&self, left_on: &str, right: &Table, right_on: &str) -> Vec<(usize, usize)> {
        let lc = self.column(left_on);
        let rc = right.column(right_on);
        // Build on the smaller input, probe with the larger.
        let (build_vals, probe_vals, swapped) = if self.rows() <= right.rows() {
            (&self.columns[lc], &right.columns[rc], false)
        } else {
            (&right.columns[rc], &self.columns[lc], true)
        };
        let mut ht: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, &v) in build_vals.iter().enumerate() {
            ht.entry(v).or_default().push(i);
        }
        let mut out = Vec::new();
        for (j, v) in probe_vals.iter().enumerate() {
            if let Some(matches) = ht.get(v) {
                for &i in matches {
                    out.push(if swapped { (j, i) } else { (i, j) });
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// A comparison predicate on an `i64` column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// `value < threshold`.
    LessThan(i64),
    /// `value >= threshold`.
    AtLeast(i64),
    /// `lo <= value < hi`.
    Between(i64, i64),
    /// `value == key`.
    Equals(i64),
}

impl Predicate {
    /// Evaluates the predicate.
    #[must_use]
    pub fn eval(&self, v: i64) -> bool {
        match *self {
            Predicate::LessThan(t) => v < t,
            Predicate::AtLeast(t) => v >= t,
            Predicate::Between(lo, hi) => lo <= v && v < hi,
            Predicate::Equals(k) => v == k,
        }
    }
}

/// Aggregation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count.
    Count,
    /// Sum of the column.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn orders() -> Table {
        let mut t = Table::new(&["id", "customer", "amount"]);
        t.push(&[1, 10, 250]);
        t.push(&[2, 11, 75]);
        t.push(&[3, 10, 500]);
        t.push(&[4, 12, 20]);
        t
    }

    #[test]
    fn filter_and_aggregate() {
        let t = orders();
        let big = t.filter("amount", Predicate::AtLeast(100));
        assert_eq!(big, vec![0, 2]);
        assert_eq!(t.aggregate("amount", &big, Aggregate::Sum), 750);
        assert_eq!(t.aggregate("amount", &big, Aggregate::Count), 2);
        assert_eq!(t.aggregate("amount", &big, Aggregate::Min), 250);
        assert_eq!(t.aggregate("amount", &big, Aggregate::Max), 500);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let t = orders();
        let mut customers = Table::new(&["cid", "tier"]);
        customers.push(&[10, 1]);
        customers.push(&[12, 2]);
        customers.push(&[13, 3]);
        let joined = t.hash_join("customer", &customers, "cid");
        // Nested-loop oracle.
        let mut oracle = Vec::new();
        for i in 0..t.rows() {
            for j in 0..customers.rows() {
                if t.values(t.column("customer"))[i] == customers.values(0)[j] {
                    oracle.push((i, j));
                }
            }
        }
        oracle.sort_unstable();
        assert_eq!(joined, oracle);
        assert_eq!(joined.len(), 3); // orders 1, 3 -> customer 10; order 4 -> 12
    }

    #[test]
    fn predicates_cover_ranges() {
        assert!(Predicate::LessThan(5).eval(4));
        assert!(!Predicate::LessThan(5).eval(5));
        assert!(Predicate::Between(2, 5).eval(2));
        assert!(!Predicate::Between(2, 5).eval(5));
        assert!(Predicate::Equals(7).eval(7));
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_rejected() {
        let _ = orders().filter("nope", Predicate::Equals(0));
    }

    proptest! {
        /// Filter + Count == the number of matching values, and the
        /// survivors all satisfy the predicate, for arbitrary data.
        #[test]
        fn filter_is_sound_and_complete(
            vals in proptest::collection::vec(-1_000i64..1_000, 0..200),
            threshold in -1_000i64..1_000,
        ) {
            let mut t = Table::new(&["v"]);
            for &v in &vals {
                t.push(&[v]);
            }
            let survivors = t.filter("v", Predicate::AtLeast(threshold));
            let expect = vals.iter().filter(|&&v| v >= threshold).count();
            prop_assert_eq!(survivors.len(), expect);
            for &i in &survivors {
                prop_assert!(vals[i] >= threshold);
            }
        }

        /// Join cardinality equals the sum over keys of |left| x |right|.
        #[test]
        fn join_cardinality(
            left in proptest::collection::vec(0i64..8, 0..60),
            right in proptest::collection::vec(0i64..8, 0..60),
        ) {
            let mut l = Table::new(&["k"]);
            for &v in &left { l.push(&[v]); }
            let mut r = Table::new(&["k"]);
            for &v in &right { r.push(&[v]); }
            let joined = l.hash_join("k", &r, "k");
            let mut expect = 0usize;
            for key in 0..8 {
                let nl = left.iter().filter(|&&v| v == key).count();
                let nr = right.iter().filter(|&&v| v == key).count();
                expect += nl * nr;
            }
            prop_assert_eq!(joined.len(), expect);
        }
    }
}
