//! Multi-tenant co-execution: CBIR and analytics sharing one hierarchy.
//!
//! The GAM exists to coordinate *multiple* workloads: the paper's design
//! goals include "reducing inter-task memory access interference" and
//! resource balancing "during runtime". This module co-schedules the CBIR
//! proper mapping with a near-storage scan query on one machine and
//! measures what each pays for the other's presence — the interference the
//! buffer-table isolation and per-level queues are meant to bound.

use crate::queries::ScanQuery;
use crate::templates::{analytics_blueprint, analytics_registry};
use reach::fingerprint::ConfigFingerprint;
use reach::{
    FnScenario, Level, Pipeline, ReachConfig, Scenario, ScenarioExecutor, SequentialExecutor,
    StreamType, TaskWork,
};
use reach_cbir::pipeline::CbirStage;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};
use reach_sim::{FingerprintBuilder, SimDuration};

/// Results of the co-run experiment.
#[derive(Clone, Debug)]
pub struct CoRunReport {
    /// CBIR makespan alone (batches as configured).
    pub cbir_alone: SimDuration,
    /// CBIR makespan sharing the machine with the scan.
    pub cbir_shared: SimDuration,
    /// Scan makespan alone.
    pub scan_alone: SimDuration,
    /// Scan makespan sharing the machine with CBIR.
    pub scan_shared: SimDuration,
}

impl CoRunReport {
    /// CBIR's slowdown factor from sharing.
    #[must_use]
    pub fn cbir_slowdown(&self) -> f64 {
        self.cbir_shared.as_secs_f64() / self.cbir_alone.as_secs_f64()
    }

    /// The scan's slowdown factor from sharing.
    #[must_use]
    pub fn scan_slowdown(&self) -> f64 {
        self.scan_shared.as_secs_f64() / self.scan_alone.as_secs_f64()
    }
}

/// Builds the near-storage scan pipeline used by the co-run (the analytics
/// accelerators live alongside the CBIR ones, so both fit one machine).
fn scan_pipeline(query: &ScanQuery, shards: u64) -> Pipeline {
    let mut rc = ReachConfig::new();
    let table = rc.create_fixed_buffer("table", Level::NearStor, query.table_bytes);
    let survivors = rc.create_stream(
        Level::NearStor,
        Level::OnChip,
        StreamType::Collect,
        query.survivor_bytes().max(1),
        2,
    );
    let result = rc.create_stream(Level::OnChip, Level::Cpu, StreamType::Pair, 4 << 10, 2);
    let scans: Vec<_> = (0..shards)
        .map(|_| {
            let s = rc.register_acc("SCAN-ZCU9", Level::NearStor);
            rc.set_arg(s, 0, table);
            rc.set_arg(s, 1, survivors);
            s
        })
        .collect();
    let agg = rc.register_acc("AGG-VU9P", Level::OnChip);
    rc.set_arg(agg, 0, survivors);
    rc.set_arg(agg, 1, result);
    let mut p = Pipeline::new(
        rc.build_with(&analytics_registry())
            .expect("co-run scan config"),
    );
    for s in scans {
        p.call(
            s,
            TaskWork::stream(query.scan_macs() / shards, query.table_bytes / shards),
            "scan",
        );
    }
    p.call(
        agg,
        TaskWork::stream(query.survivor_bytes() / 8, query.survivor_bytes().max(1)),
        "aggregate",
    );
    p
}

/// Runs CBIR (proper mapping, `cbir_batches` batches) and a near-storage
/// scan, each alone and then together on one machine, and reports the
/// mutual slowdown.
///
/// Job-id spaces are disjoint (CBIR batches from 0, the scan at 512+), so
/// the GAM schedules both tenants through the same per-level queues.
#[must_use]
pub fn co_run_interference(cbir_batches: usize, query: &ScanQuery) -> CoRunReport {
    co_run_interference_with(&SequentialExecutor, cbir_batches, query)
}

/// [`co_run_interference`] through an explicit executor: the two isolated
/// runs and the shared run are three independent scenarios.
#[must_use]
pub fn co_run_interference_with(
    executor: &dyn ScenarioExecutor,
    cbir_batches: usize,
    query: &ScanQuery,
) -> CoRunReport {
    let blueprint = analytics_blueprint();
    let shards = blueprint.config().near_storage_accelerators as u64;
    let cbir = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
    let query = *query;

    // Vouched fingerprints for the closures below. Each closure's report is
    // fully determined by the blueprint, the two compiled pipelines, the
    // CBIR batch count and the session seed; the scan job-id base (512) is
    // a constant covered by the domain string. Digesting all of them for
    // every tag over-keys the two "alone" points slightly, which costs
    // nothing (the suite never varies one input while expecting the others
    // to hit) and can never under-key.
    let cbir_compiled = cbir.compile(blueprint.config(), blueprint.registry(), &CbirStage::ALL);
    let scan_p = scan_pipeline(&query, shards);
    let seed = reach_sim::rng::session_seed();
    let vouch = |tag: &str| {
        let mut b = FingerprintBuilder::new("reach-corun-v1");
        b.write_str(tag);
        blueprint.fingerprint().write_into(&mut b);
        cbir_compiled.fingerprint().write_into(&mut b);
        scan_p.fingerprint().write_into(&mut b);
        b.write_usize(cbir_batches);
        b.write_u64(seed);
        ConfigFingerprint::from_builder(b)
    };

    let scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(
            FnScenario::new("corun/cbir-alone", blueprint.clone(), move |machine| {
                cbir.run(machine, cbir_batches)
            })
            .with_fingerprint(vouch("cbir-alone")),
        ),
        Box::new(
            FnScenario::new("corun/scan-alone", blueprint.clone(), move |machine| {
                scan_pipeline(&query, shards).run(machine, 1)
            })
            .with_fingerprint(vouch("scan-alone")),
        ),
        Box::new(
            FnScenario::new(
                "corun/shared",
                blueprint.clone(),
                // Shared run: submit both tenants' jobs up front.
                move |machine| {
                    let cbir_p = cbir.build(machine);
                    for batch in 0..cbir_batches {
                        let (job, works) = cbir_p.job_for_batch(batch as u64);
                        machine.submit(job, works);
                    }
                    let scan_p = scan_pipeline(&query, shards);
                    let (scan_job, scan_works) = scan_p.job_for_batch(512);
                    machine.submit(scan_job, scan_works);
                    machine.run()
                },
            )
            .with_fingerprint(vouch("shared")),
        ),
    ];
    let results = executor.run_all(scenarios);
    let [cbir_alone_r, scan_alone_r, shared] = &results[..] else {
        unreachable!("three scenarios in, three results out")
    };

    // Completions are reported in job-id order: CBIR batches first, the
    // scan job (id-space 512) last.
    let completions = shared.report.job_completions();
    assert_eq!(completions.len(), cbir_batches + 1);
    let cbir_shared = completions[cbir_batches - 1].since(reach_sim::SimTime::ZERO);
    let scan_shared = completions[cbir_batches].since(reach_sim::SimTime::ZERO);

    CoRunReport {
        cbir_alone: cbir_alone_r.report.makespan,
        cbir_shared,
        scan_alone: scan_alone_r.report.makespan,
        scan_shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> ScanQuery {
        ScanQuery {
            table_bytes: 4 << 30,
            selectivity_pct: 2,
            row_bytes: 64,
        }
    }

    #[test]
    fn co_run_completes_both_tenants() {
        let r = co_run_interference(4, &query());
        assert!(
            r.cbir_shared >= r.cbir_alone,
            "sharing cannot speed CBIR up"
        );
        assert!(
            r.scan_shared >= r.scan_alone,
            "sharing cannot speed the scan up"
        );
    }

    #[test]
    fn interference_is_bounded() {
        // The tenants collide on the near-storage level (the scan owns the
        // SSD accelerators while rerank tasks queue behind it); the GAM's
        // per-level FIFO bounds the damage to roughly serialized occupancy,
        // not a collapse.
        let r = co_run_interference(4, &query());
        assert!(
            r.cbir_slowdown() < 3.0,
            "CBIR slowdown {:.2} suggests starvation",
            r.cbir_slowdown()
        );
        assert!(
            r.scan_slowdown() < 6.0,
            "scan slowdown {:.2} suggests starvation",
            r.scan_slowdown()
        );
    }

    #[test]
    fn some_interference_exists_on_the_shared_level() {
        // Both tenants use the near-storage accelerators; at least one of
        // them must feel the other.
        let r = co_run_interference(4, &query());
        let total = r.cbir_slowdown().max(r.scan_slowdown());
        assert!(
            total > 1.02,
            "no measurable interference ({:.3} / {:.3}) — the co-run is not actually sharing",
            r.cbir_slowdown(),
            r.scan_slowdown()
        );
    }
}
